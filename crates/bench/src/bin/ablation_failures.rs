//! Ablation I: availability under server crashes and origin outages.
//!
//! The paper evaluates the hybrid scheme on a fault-free network. This
//! ablation injects deterministic faults — exponential per-server
//! crash/recovery windows plus origin blackouts — and measures what each
//! strategy's storage layout buys in *availability*: replicated copies keep
//! serving through an origin outage and give misses somewhere to fail over
//! to, while pure caching must reach an unreachable origin on every miss.
//! Failovers pay a retry penalty per dead holder skipped, so the degraded
//! tail latency is reported alongside availability.
//!
//! ```text
//! cargo run -p cdn-bench --release --bin ablation_failures -- \
//!     [--quick] [--threads <n>] [--trace-out <path>] [--metrics-out <path>]
//! ```

use cdn_bench::harness::{banner, generate_scenario, write_csv, BenchArgs};
use cdn_core::Strategy;
use cdn_sim::{FaultParams, SimReport};
use cdn_workload::LambdaMode;

struct Intensity {
    label: &'static str,
    faults: Option<FaultParams>,
}

fn intensities(seed: u64) -> Vec<Intensity> {
    let base = FaultParams {
        retry_penalty_ms: 200.0,
        seed,
        ..Default::default()
    };
    vec![
        Intensity {
            label: "none",
            faults: None,
        },
        Intensity {
            label: "light",
            faults: Some(FaultParams {
                mttf: 2000.0,
                mttr: 200.0,
                origin_outage: 0.05,
                ..base
            }),
        },
        Intensity {
            label: "moderate",
            faults: Some(FaultParams {
                mttf: 800.0,
                mttr: 250.0,
                origin_outage: 0.15,
                ..base
            }),
        },
        Intensity {
            label: "severe",
            faults: Some(FaultParams {
                mttf: 300.0,
                mttr: 300.0,
                origin_outage: 0.30,
                ..base
            }),
        },
    ]
}

fn main() {
    let args = BenchArgs::parse("ablation_failures");
    let scale = args.scale;
    banner("Ablation I: availability under failures", scale);
    let config = args.config(0.05, 0.0, LambdaMode::Uncacheable);
    let scenario = generate_scenario(&config);

    let strategies = [Strategy::Replication, Strategy::Caching, Strategy::Hybrid];
    let plans: Vec<_> = strategies.iter().map(|&s| (s, scenario.plan(s))).collect();

    println!(
        "\n  {:<10} {:<12} {:>8} {:>9} {:>10} {:>10} {:>17}",
        "intensity", "strategy", "avail%", "failed", "failover%", "mean_ms", "degraded_p95_ms"
    );
    let mut rows = Vec::new();
    let mut severe: Vec<(Strategy, f64)> = Vec::new();
    for intensity in intensities(config.seed) {
        for (strategy, plan) in &plans {
            let mut sim = scenario.config.sim;
            sim.faults = intensity.faults;
            let report: SimReport = {
                // Pure replication keeps no cache, as in the paper.
                let zero: &(dyn Fn(u64) -> Box<dyn cdn_core::cache::Cache> + Sync) =
                    &|_| Box::new(cdn_core::cache::LruCache::new(0));
                let factory = if *strategy == Strategy::Replication {
                    Some(zero)
                } else {
                    None
                };
                cdn_sim::simulate_system(
                    &scenario.problem,
                    &plan.placement,
                    &scenario.catalog,
                    &scenario.trace,
                    &sim,
                    factory,
                )
            };
            println!(
                "  {:<10} {:<12} {:>8.3} {:>9} {:>9.1}% {:>10.2} {:>17.1}",
                intensity.label,
                strategy.name(),
                100.0 * report.availability(),
                report.failed_requests,
                100.0 * report.failover_ratio(),
                report.mean_latency_ms,
                report.failover_histogram.percentile(0.95),
            );
            rows.push(format!(
                "{},{},{:.6},{},{:.6},{:.3},{:.1}",
                intensity.label,
                strategy.name(),
                report.availability(),
                report.failed_requests,
                report.failover_ratio(),
                report.mean_latency_ms,
                report.failover_histogram.percentile(0.95),
            ));
            if intensity.label == "severe" {
                severe.push((*strategy, report.availability()));
            }
        }
    }

    // The claim this ablation exists to check: replicas are what keep a CDN
    // serving through faults, so under heavy failures the strategies that
    // place them must beat pure caching on availability.
    let avail = |s: Strategy| severe.iter().find(|(x, _)| *x == s).expect("severe row").1;
    assert!(
        avail(Strategy::Replication) > avail(Strategy::Caching)
            && avail(Strategy::Hybrid) > avail(Strategy::Caching),
        "replication/hybrid availability must exceed pure caching under severe faults: \
         replication {:.4}, hybrid {:.4}, caching {:.4}",
        avail(Strategy::Replication),
        avail(Strategy::Hybrid),
        avail(Strategy::Caching),
    );
    println!(
        "\n  under severe faults: replication {:.2}%, hybrid {:.2}%, caching {:.2}% — \n\
         \x20 replicated copies ride out origin outages that strand every cache miss.",
        100.0 * avail(Strategy::Replication),
        100.0 * avail(Strategy::Hybrid),
        100.0 * avail(Strategy::Caching),
    );
    write_csv(
        "ablation_failures.csv",
        "intensity,strategy,availability,failed,failover_ratio,mean_ms,degraded_p95_ms",
        &rows,
    );
    args.finish("ablation_failures");
}
