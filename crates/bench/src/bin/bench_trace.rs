//! Trace ingestion + delayed-hit benchmark: `BENCH_trace.json`.
//!
//! Exercises the real-trace pipeline end to end: obtain a `.events` trace
//! (replay the file given with `--trace-in`, or export the scenario's own
//! synthetic workload through the binary format — an ingest round-trip),
//! then replay it through the hybrid plan at a sweep of remote-fetch
//! latencies. Asserts two invariants in-process:
//!
//! * **Off-switch identity** — fetch latency 0 is bit-identical to the
//!   instant-fetch path (`fetch_latency: None`).
//! * **Coalescing accounting** — at positive latency, delayed hits appear
//!   and every cause bucket still sums to the measured request count.
//!
//! Emits `BENCH_trace.json` (replay stats + wall-clock) and
//! `bench_trace.csv` (one row per fetch latency: delayed hits, origin
//! fetches, mean latency) under the results directory.
//!
//! Usage: `bench_trace [--scale <tier>] [--quick] [--trace-in <path>]
//!                     [--threads <n>] [--quiet] ...`

use cdn_bench::harness::{banner, progress, write_csv, write_json, BenchArgs, PhaseTimings};
use cdn_core::{export_events, replay_events, Scenario, Strategy};
use cdn_sim::SimReport;
use cdn_workload::TraceEvent;
use std::fmt::Write as _;

/// The remote-fetch latencies (in ticks) the sweep replays at. 0 is the
/// off switch (asserted bit-identical to `None`); the rest show coalescing
/// rising with the in-flight window.
const FETCH_LATENCIES: [u64; 4] = [0, 16, 64, 256];

fn replay_at(
    scenario: &mut Scenario,
    plan: &cdn_core::PlanResult,
    events: &[TraceEvent],
    fetch_latency: Option<u64>,
) -> SimReport {
    scenario.config.sim.fetch_latency = fetch_latency;
    replay_events(scenario, plan, events.to_vec())
}

/// Bitwise equality of the fields that summarise a replay.
fn reports_identical(a: &SimReport, b: &SimReport) -> bool {
    a.mean_latency_ms.to_bits() == b.mean_latency_ms.to_bits()
        && a.mean_cost_hops.to_bits() == b.mean_cost_hops.to_bits()
        && a.total_requests == b.total_requests
        && a.cache_hits == b.cache_hits
        && a.replica_hits == b.replica_hits
        && a.delayed_hits == b.delayed_hits
        && a.origin_fetches == b.origin_fetches
        && a.peer_fetches == b.peer_fetches
        && a.cause == b.cause
        && a.histogram.cdf() == b.histogram.cdf()
}

fn main() {
    let args = BenchArgs::parse("bench_trace");
    let scale = args.scale;
    banner("bench_trace: .events replay + delayed-hit sweep", scale);

    let config = args.config(0.05, 0.0, cdn_workload::LambdaMode::Uncacheable);
    let mut timings = PhaseTimings::new(args.threads.unwrap_or_else(rayon::current_num_threads));
    let mut scenario = timings.time("scenario", || Scenario::generate(&config));

    let (events, source) = timings.time("ingest", || match &args.trace_in {
        Some(path) => {
            progress(&format!("reading trace {}", path.display()));
            let events = cdn_workload::read_events_file(path).unwrap_or_else(|e| {
                eprintln!("error: reading {}: {e}", path.display());
                std::process::exit(1);
            });
            (events, path.display().to_string())
        }
        None => {
            // Ingest round-trip on the synthetic workload: export through
            // the binary codec and decode back, so the format sits on the
            // replay path even without an external trace.
            progress("exporting synthetic workload to .events");
            let encoded = cdn_workload::encode_events(&export_events(&scenario));
            let events = cdn_workload::decode_events(&encoded).expect("round-trip decode");
            (events, "synthetic (ingest round-trip)".to_string())
        }
    });
    println!("  trace: {} events from {source}", events.len());
    assert!(!events.is_empty(), "empty trace");

    let plan = timings.time("placement", || scenario.plan(Strategy::Hybrid));

    progress("replay: instant-fetch baseline");
    let instant = timings.time("replay_instant", || {
        replay_at(&mut scenario, &plan, &events, None)
    });
    let mut rows = Vec::new();
    let mut sweep = Vec::new();
    for latency in FETCH_LATENCIES {
        progress(&format!("replay: fetch latency {latency}"));
        let report = timings.time(&format!("replay_l{latency}"), || {
            replay_at(&mut scenario, &plan, &events, Some(latency))
        });
        rows.push(format!(
            "{latency},{},{},{},{},{:.3}",
            report.delayed_hits,
            report.origin_fetches,
            report.peer_fetches,
            report.cache_hits,
            report.mean_latency_ms
        ));
        println!(
            "  fetch latency {latency:>4}: {:>8} delayed hits, {:>8} origin fetches, mean {:.2} ms",
            report.delayed_hits, report.origin_fetches, report.mean_latency_ms
        );
        sweep.push((latency, report));
    }

    // Invariant 1: latency 0 is the off switch, bit-identical to None.
    let zero = &sweep[0].1;
    let off_identical = reports_identical(&instant, zero);
    println!("  fetch latency 0 bit-identical to instant fetch: {off_identical}");

    // Invariant 2: with a positive latency, delayed hits appear and the
    // cause buckets still account for every measured request.
    let mut coalesced = false;
    for (latency, report) in &sweep {
        let bucket_sum = report.cache_hits
            + report.replica_hits
            + report.delayed_hits
            + report.origin_fetches
            + report.peer_fetches
            + report.failover_fetches
            + report.failed_requests;
        assert_eq!(
            bucket_sum, report.measured_requests,
            "cause buckets must sum to measured requests at latency {latency}"
        );
        assert_eq!(report.cause.total_requests(), report.measured_requests);
        if *latency > 0 && report.delayed_hits > 0 {
            coalesced = true;
        }
    }
    println!("  positive latencies produced delayed hits: {coalesced}");

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale.label());
    let _ = writeln!(json, "  \"events\": {},", events.len());
    let _ = writeln!(json, "  \"off_switch_identical\": {off_identical},");
    let _ = writeln!(json, "  \"coalesced\": {coalesced},");
    let _ = writeln!(json, "  \"sweep\": [");
    for (idx, (latency, report)) in sweep.iter().enumerate() {
        let comma = if idx + 1 < sweep.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"fetch_latency\": {latency}, \"delayed_hits\": {}, \
             \"origin_fetches\": {}, \"mean_latency_ms\": {:.6}}}{comma}",
            report.delayed_hits, report.origin_fetches, report.mean_latency_ms
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"wall_clock\": {}", timings.to_json());
    json.push_str("}\n");
    write_json("BENCH_trace.json", &json);
    write_csv(
        "bench_trace.csv",
        "fetch_latency,delayed_hits,origin_fetches,peer_fetches,cache_hits,mean_latency_ms",
        &rows,
    );
    args.finish("bench_trace");

    assert!(off_identical, "fetch latency 0 diverged from instant fetch");
    assert!(coalesced, "no delayed hits at any positive fetch latency");
}
