//! Ablation G: the read+update objective.
//!
//! The paper's objective is read-only; its related-work survey highlights
//! FAP formulations with "read and update cost" (Loukopoulos & Ahmad;
//! Wolfson et al.). This ablation turns on per-site update rates — every
//! update is pushed primary → replica — and sweeps the write intensity.
//! Replicas lose value as sites become mutable; caches are unaffected
//! (consistency for caches is the λ/refresh mechanism), so the hybrid
//! should glide from replica-heavy to cache-heavy as writes grow.
//!
//! ```text
//! cargo run -p cdn-bench --release --bin ablation_updates -- \
//!     [--quick] [--threads <n>] [--trace-out <path>] [--metrics-out <path>]
//! ```

use cdn_bench::harness::{banner, generate_scenario, write_csv, BenchArgs};
use cdn_placement::{
    greedy_global, hybrid::hybrid_greedy_paper, mean_hops_per_request, total_cost, HybridConfig,
};
use cdn_workload::LambdaMode;

fn main() {
    let args = BenchArgs::parse("ablation_updates");
    let scale = args.scale;
    banner(
        "Ablation G: update (write) intensity vs replica count",
        scale,
    );
    let config = args.config(0.05, 0.0, LambdaMode::Uncacheable);
    let scenario = generate_scenario(&config);

    // Express update intensity as a write:read ratio against each site's
    // mean per-server demand.
    let mean_site_requests =
        scenario.problem.grand_total() as f64 / scenario.problem.m_sites() as f64;

    println!(
        "\n  {:>11} {:>16} {:>15} {:>15} {:>15}",
        "write:read", "hybrid replicas", "hybrid hops/req", "greedy replicas", "greedy hops/req"
    );
    let mut rows = Vec::new();
    for ratio in [0.0, 0.001, 0.01, 0.05, 0.2] {
        let mut problem = scenario.problem.clone();
        let rate = (mean_site_requests * ratio).round() as u64;
        problem.set_update_rates(vec![rate; problem.m_sites()]);

        let hybrid = hybrid_greedy_paper(&problem, &HybridConfig::default());
        let hybrid_hops = mean_hops_per_request(&problem, hybrid.final_cost);

        let greedy = greedy_global(&problem);
        let greedy_total = total_cost(&problem, &greedy.placement, |_, _| 0.0);
        let greedy_hops = mean_hops_per_request(&problem, greedy_total);

        println!(
            "  {:>11} {:>16} {:>15.3} {:>15} {:>15.3}",
            format!("{ratio:.3}"),
            hybrid.placement.replica_count(),
            hybrid_hops,
            greedy.placement.replica_count(),
            greedy_hops,
        );
        rows.push(format!(
            "{ratio},{rate},{},{hybrid_hops:.4},{},{greedy_hops:.4}",
            hybrid.placement.replica_count(),
            greedy.placement.replica_count()
        ));
    }
    println!(
        "\n  both planners shed replicas as writes grow; the hybrid has a\n\
         \x20 second lever — it converts the freed space into cache, so its\n\
         \x20 effective cost rises far more slowly than pure replication's."
    );
    write_csv(
        "ablation_updates.csv",
        "write_read_ratio,updates_per_site,hybrid_replicas,hybrid_hops,greedy_replicas,greedy_hops",
        &rows,
    );
    args.finish("ablation_updates");
}
