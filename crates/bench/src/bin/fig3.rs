//! Figure 3: response-time CDFs of Replication vs Caching vs Hybrid with
//! every object cacheable (λ = 0), at 5% and 10% server capacity.
//!
//! Paper-reported shape: replication's CDF is a tight normal-ish ramp;
//! caching has a big first-hop step then a heavy tail; hybrid follows the
//! caching curve early and the replication curve late, winning overall —
//! "the hybrid approach outperformed the pure replication policy by
//! approximately 40% on average, and the pure caching by 15% roughly."
//!
//! ```text
//! cargo run -p cdn-bench --release --bin fig3 -- \
//!     [--quick] [--threads <n>] [--trace-out <path>] [--metrics-out <path>]
//! ```

use cdn_bench::harness::{
    assert_sane, banner, generate_scenario, improvement_pct, run_strategies, summary_block,
    write_cdf_csvs, BenchArgs,
};
use cdn_core::Strategy;
use cdn_workload::LambdaMode;

fn main() {
    let args = BenchArgs::parse("fig3");
    let scale = args.scale;
    banner("Figure 3: CDFs, all objects cacheable (lambda = 0)", scale);
    let strategies = [Strategy::Replication, Strategy::Caching, Strategy::Hybrid];

    for (panel, capacity) in [("a", 0.05), ("b", 0.10)] {
        println!(
            "\n-- Figure 3({panel}): capacity {:.0}% --",
            capacity * 100.0
        );
        let config = args.config(capacity, 0.0, LambdaMode::Uncacheable);
        let scenario = generate_scenario(&config);
        let results = run_strategies(&scenario, &strategies);
        assert_sane(&results);
        println!("\n{}", summary_block(&results));
        if let Some(gain) = improvement_pct(&results, Strategy::Hybrid, Strategy::Replication) {
            println!("  hybrid vs replication: {gain:+.1}% mean latency (paper: ~40%)");
        }
        if let Some(gain) = improvement_pct(&results, Strategy::Hybrid, Strategy::Caching) {
            println!("  hybrid vs caching:     {gain:+.1}% mean latency (paper: ~15%)");
        }
        write_cdf_csvs(&format!("fig3{panel}"), &results);
    }
    args.finish("fig3");
}
