//! Figure 5: the hybrid algorithm against ad-hoc fixed storage splits
//! (20% cache / 80% replication and 80% cache / 20% replication) at 5%
//! capacity, for λ = 0 and λ = 0.1.
//!
//! Paper-reported result: "ad-hoc approaches are not very effective. The
//! hybrid algorithm constantly outperforms both alternatives." (Further
//! splits — 40%, 60% — are covered by `ablation_split`.)
//!
//! ```text
//! cargo run -p cdn-bench --release --bin fig5 -- \
//!     [--quick] [--threads <n>] [--trace-out <path>] [--metrics-out <path>]
//! ```

use cdn_bench::harness::{
    assert_sane, banner, generate_scenario, improvement_pct, run_strategies, summary_block,
    write_cdf_csvs, BenchArgs,
};
use cdn_core::Strategy;
use cdn_workload::LambdaMode;

fn main() {
    let args = BenchArgs::parse("fig5");
    let scale = args.scale;
    banner("Figure 5: hybrid vs ad-hoc fixed splits", scale);
    let strategies = [
        Strategy::Hybrid,
        Strategy::AdHoc {
            cache_fraction: 0.2,
        },
        Strategy::AdHoc {
            cache_fraction: 0.8,
        },
    ];

    for (panel, lambda, mode) in [
        ("a", 0.0, LambdaMode::Uncacheable),
        ("b", 0.10, LambdaMode::Expired),
    ] {
        println!(
            "\n-- Figure 5({panel}): capacity 5%, lambda = {:.0}% --",
            lambda * 100.0
        );
        let config = args.config(0.05, lambda, mode);
        let scenario = generate_scenario(&config);
        let results = run_strategies(&scenario, &strategies);
        assert_sane(&results);
        println!("\n{}", summary_block(&results));
        for fraction in [0.2, 0.8] {
            if let Some(gain) = improvement_pct(
                &results,
                Strategy::Hybrid,
                Strategy::AdHoc {
                    cache_fraction: fraction,
                },
            ) {
                println!(
                    "  hybrid vs {:.0}%-cache ad-hoc: {gain:+.1}% mean latency",
                    fraction * 100.0
                );
            }
        }
        write_cdf_csvs(&format!("fig5{panel}"), &results);
    }
    args.finish("fig5");
}
