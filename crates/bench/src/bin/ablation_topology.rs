//! Ablation F: topology sensitivity.
//!
//! The paper evaluates on a GT-ITM transit-stub graph only. Here we re-run
//! the headline replication/caching/hybrid comparison on two additional
//! graph families — Barabási–Albert preferential attachment (hub-dominated,
//! short paths) and a flat random tree-plus-extras (no hierarchy, long
//! paths) — to check which conclusions survive the topology choice.
//!
//! ```text
//! cargo run -p cdn-bench --release --bin ablation_topology -- \
//!     [--quick] [--threads <n>] [--trace-out <path>] [--metrics-out <path>]
//! ```

use cdn_bench::harness::{banner, scenario_on_graph, write_csv, BenchArgs, Scale};
use cdn_placement::{greedy_global, hybrid::hybrid_greedy_paper, HybridConfig, Placement};
use cdn_sim::simulate_system;
use cdn_topology::gen::flat;
use cdn_topology::{barabasi_albert, BarabasiAlbertConfig, Graph, GraphBuilder, NodeId};
use cdn_topology::{TransitStubConfig, TransitStubTopology};
use cdn_workload::LambdaMode;

fn flat_random(n: usize, extra_prob: f64, seed: u64) -> Graph {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let nodes: Vec<NodeId> = (0..n as NodeId).collect();
    flat::connected_random_domain(&mut b, &nodes, extra_prob, &mut rng);
    b.build()
}

fn main() {
    let args = BenchArgs::parse("ablation_topology");
    let scale = args.scale;
    banner("Ablation F: topology families", scale);
    let cfg = args.config(0.05, 0.0, LambdaMode::Uncacheable);
    let n_nodes = match scale {
        Scale::Paper => 1560,
        Scale::Quick => 120,
        Scale::Large | Scale::LargeCi => {
            // Three topology families x a full hybrid plan each: even with
            // the lazy-greedy planner this is several CPU-hours at the
            // large fleet. Use --scale paper.
            eprintln!("ablation_topology: the large tiers are not supported (3x plan cost)");
            std::process::exit(2);
        }
    };

    let transit_stub = {
        let topo_cfg = match scale {
            Scale::Paper => TransitStubConfig::paper_default(),
            Scale::Quick => TransitStubConfig::small(),
            Scale::Large | Scale::LargeCi => unreachable!(),
        };
        TransitStubTopology::generate(&topo_cfg, cfg.seed).graph
    };
    let ba = barabasi_albert(
        &BarabasiAlbertConfig {
            n_nodes,
            edges_per_node: 2,
        },
        cfg.seed,
    );
    let flat_g = flat_random(n_nodes, 2.0 / n_nodes as f64, cfg.seed);

    println!(
        "\n  {:<14} {:>8} {:>14} {:>11} {:>11} {:>12}",
        "topology", "diam", "replication_ms", "caching_ms", "hybrid_ms", "hybrid_gain%"
    );
    let mut rows = Vec::new();
    for (label, graph) in [
        ("transit-stub", &transit_stub),
        ("barabasi", &ba),
        ("flat-random", &flat_g),
    ] {
        let metrics = cdn_topology::metrics::compute_metrics(graph, 16);
        let (problem, catalog, trace) = scenario_on_graph(graph, &cfg);

        // Replication (cache-less), caching, hybrid — same machinery as the
        // figure binaries but against the custom problem.
        let zero_cache: &(dyn Fn(u64) -> Box<dyn cdn_core::cache::Cache> + Sync) =
            &|_| Box::new(cdn_core::cache::LruCache::new(0));
        let repl = simulate_system(
            &problem,
            &greedy_global(&problem).placement,
            &catalog,
            &trace,
            &cfg.sim,
            Some(zero_cache),
        );
        let caching = simulate_system(
            &problem,
            &Placement::primaries_only(&problem),
            &catalog,
            &trace,
            &cfg.sim,
            None,
        );
        let hybrid = simulate_system(
            &problem,
            &hybrid_greedy_paper(&problem, &HybridConfig::default()).placement,
            &catalog,
            &trace,
            &cfg.sim,
            None,
        );
        let gain = 100.0 * (repl.mean_latency_ms - hybrid.mean_latency_ms)
            / repl.mean_latency_ms.max(1e-9);
        println!(
            "  {:<14} {:>8} {:>14.2} {:>11.2} {:>11.2} {:>12.1}",
            label,
            metrics.diameter,
            repl.mean_latency_ms,
            caching.mean_latency_ms,
            hybrid.mean_latency_ms,
            gain
        );
        rows.push(format!(
            "{label},{},{:.3},{:.3},{:.3},{gain:.2}",
            metrics.diameter, repl.mean_latency_ms, caching.mean_latency_ms, hybrid.mean_latency_ms
        ));
        // The hybrid must win (or tie) everywhere — the paper's conclusion
        // should not be an artefact of the transit-stub hierarchy.
        assert!(
            hybrid.mean_latency_ms <= repl.mean_latency_ms * 1.02,
            "{label}"
        );
        assert!(
            hybrid.mean_latency_ms <= caching.mean_latency_ms * 1.02,
            "{label}"
        );
    }
    println!(
        "\n  shorter-diameter graphs (hubs) shrink everyone's redirect cost and\n\
         \x20 therefore the absolute gains; the ranking itself is topology-stable."
    );
    write_csv(
        "ablation_topology.csv",
        "topology,diameter,replication_ms,caching_ms,hybrid_ms,hybrid_gain_pc",
        &rows,
    );
    args.finish("ablation_topology");
}
