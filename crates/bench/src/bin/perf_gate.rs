//! CI perf-regression gate over `BENCH_parallel.json`.
//!
//! Compares a freshly generated benchmark file against a committed
//! baseline with two very different strictness levels:
//!
//! * the `"work"` section holds deterministic work counters (series terms
//!   evaluated, placement candidates scanned, cache events, ...) that are
//!   pure functions of the scenario parameters — these must match the
//!   baseline **exactly**, including the key set; a drifted counter means
//!   the algorithm now does different work, which is either a perf
//!   regression or an unacknowledged behaviour change (fix it, or commit
//!   a new baseline deliberately);
//! * the `"wall_clock"` section is machine-dependent — per-phase times of
//!   the single-threaded run only have to stay within a 3x band of the
//!   baseline, wide enough for noisy shared CI runners but tight enough
//!   to catch order-of-magnitude blowups.
//!
//! Prints a readable delta table and exits non-zero on any violation.
//! When `$GITHUB_STEP_SUMMARY` is set, the same delta tables are appended
//! there as Markdown, so the comparison shows up on the workflow run page.
//!
//! The baseline file holds one section per scale tier (`{"quick": {...},
//! "large-ci": {...}}`); pass `--tier` to select one. A legacy single-tier
//! baseline (the old flat document) still works when its `"scale"` matches.
//!
//! `--min-speedup <x>` additionally gates the current run's measured
//! multi-thread speedup (`wall_clock.speedup_total`) — the check that the
//! parallel engine actually pays off at the internet-scale tier.
//!
//! `--min-lazy-ratio <x>` gates the lazy planner's work saving, computed
//! from the current run's own counters: (candidates evaluated + lazily
//! skipped) / evaluated must be at least `x`. This is deterministic —
//! a pure function of the instance — so it holds on any machine.
//!
//! `--max-seconds <x>` is an absolute wall-clock ceiling on the current
//! run's parallel arm (`wall_clock.runs` last entry) — the number CI
//! actually pays — catching blowups even when the committed baseline was
//! measured on very different hardware.
//!
//! Usage: `perf_gate --baseline <path> --current <path>
//!                   [--tier <label>] [--min-speedup <x>]
//!                   [--min-lazy-ratio <x>] [--max-seconds <x>]`

use cdn_telemetry::json::{parse, Json};
use std::collections::BTreeSet;
use std::process::ExitCode;

/// Wall-clock tolerance band: current/baseline must stay in [1/3, 3].
const WALL_CLOCK_BAND: f64 = 3.0;
/// Phases faster than this on both sides are skipped — at quick scale a
/// phase runs in milliseconds, where the band would only measure machine
/// speed differences, not regressions. A genuine blowup still trips the
/// gate: the regressed side crosses the floor and the ratio check fires.
const MIN_COMPARABLE_SECONDS: f64 = 0.050;

fn usage() -> String {
    "usage: perf_gate --baseline <path> --current <path> [--tier <label>] [--min-speedup <x>]\n\
     \x20                 [--min-lazy-ratio <x>] [--max-seconds <x>]\n\
     \n\
     \x20 --baseline <path>     committed BENCH_baseline.json to gate against\n\
     \x20 --current <path>      freshly generated BENCH_parallel.json / BENCH_placement.json\n\
     \x20 --tier <label>        baseline section to compare against (quick | paper |\n\
     \x20                       large | large-ci | hybrid-large-ci); default: the\n\
     \x20                       current file's scale\n\
     \x20 --min-speedup <x>     fail unless the current run's wall_clock.speedup_total >= x\n\
     \x20 --min-lazy-ratio <x>  fail unless (candidates evaluated + lazily skipped) /\n\
     \x20                       evaluated >= x in the current run's work counters\n\
     \x20 --max-seconds <x>     fail if the current run's parallel arm took longer\n\
     \x20                       than x seconds of wall-clock\n\
     \x20 --help                print this message\n"
        .into()
}

struct Args {
    baseline: String,
    current: String,
    tier: Option<String>,
    min_speedup: Option<f64>,
    min_lazy_ratio: Option<f64>,
    max_seconds: Option<f64>,
}

/// Parse a positive, finite `f64` flag value.
fn positive(flag: &str, v: Option<String>) -> Result<f64, String> {
    let v = v.ok_or(format!("{flag} needs a value"))?;
    let x: f64 = v.parse().map_err(|_| format!("{flag}: bad value `{v}`"))?;
    if !(x.is_finite() && x > 0.0) {
        return Err(format!("{flag} must be a positive number"));
    }
    Ok(x)
}

fn parse_args() -> Result<Args, String> {
    let mut baseline = None;
    let mut current = None;
    let mut tier = None;
    let mut min_speedup = None;
    let mut min_lazy_ratio = None;
    let mut max_seconds = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => baseline = Some(it.next().ok_or("--baseline needs a path")?),
            "--current" => current = Some(it.next().ok_or("--current needs a path")?),
            "--tier" => tier = Some(it.next().ok_or("--tier needs a label")?),
            "--min-speedup" => min_speedup = Some(positive("--min-speedup", it.next())?),
            "--min-lazy-ratio" => min_lazy_ratio = Some(positive("--min-lazy-ratio", it.next())?),
            "--max-seconds" => max_seconds = Some(positive("--max-seconds", it.next())?),
            "--help" | "-h" => {
                print!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unrecognised argument `{other}`")),
        }
    }
    match (baseline, current) {
        (Some(baseline), Some(current)) => Ok(Args {
            baseline,
            current,
            tier,
            min_speedup,
            min_lazy_ratio,
            max_seconds,
        }),
        _ => Err("both --baseline and --current are required".into()),
    }
}

/// Select the tier section from a (possibly multi-tier) baseline document.
///
/// A multi-tier baseline maps tier labels to the old flat layout; a legacy
/// flat baseline (with a top-level `"scale"`) stands for its own tier.
fn baseline_for_tier<'a>(doc: &'a Json, tier: &str) -> Result<&'a Json, String> {
    if let Some(section) = doc.get(tier) {
        return Ok(section);
    }
    match doc.get("scale").and_then(Json::as_str) {
        Some(s) if s == tier => Ok(doc),
        Some(s) => Err(format!(
            "baseline has no `{tier}` section (flat baseline is for scale `{s}`)"
        )),
        None => Err(format!("baseline has no `{tier}` section")),
    }
}

fn load(path: &str) -> Result<Json, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    parse(&body).map_err(|e| format!("parse {path}: {e}"))
}

/// Compare the deterministic `"work"` counters; returns failure lines.
fn check_work(baseline: &Json, current: &Json, table: &mut Vec<String>) -> Vec<String> {
    let mut failures = Vec::new();
    let empty = std::collections::BTreeMap::new();
    let base = baseline
        .get("work")
        .and_then(Json::as_obj)
        .unwrap_or(&empty);
    let cur = current.get("work").and_then(Json::as_obj).unwrap_or(&empty);
    if base.is_empty() {
        failures.push("baseline has no \"work\" section".into());
    }
    let names: BTreeSet<&String> = base.keys().chain(cur.keys()).collect();
    for name in names {
        let b = base.get(name.as_str()).and_then(Json::as_u64);
        let c = cur.get(name.as_str()).and_then(Json::as_u64);
        let (status, failed) = match (b, c) {
            (Some(b), Some(c)) if b == c => ("ok", false),
            (Some(_), Some(_)) => ("DRIFT", true),
            (None, Some(_)) => ("EXTRA", true),
            (Some(_), None) => ("MISSING", true),
            (None, None) => ("INVALID", true),
        };
        let fmt = |v: Option<u64>| v.map_or("-".into(), |v| v.to_string());
        table.push(format!(
            "  {:<32} {:>14} {:>14}  {}",
            name,
            fmt(b),
            fmt(c),
            status
        ));
        if failed {
            failures.push(format!("work counter `{name}`: {} vs {}", fmt(b), fmt(c)));
        }
    }
    failures
}

/// Single-thread per-phase seconds: `wall_clock.runs[0].phases`.
fn baseline_run_phases(doc: &Json) -> Vec<(String, f64)> {
    doc.get("wall_clock")
        .and_then(|w| w.get("runs"))
        .and_then(Json::as_arr)
        .and_then(|runs| runs.first())
        .and_then(|run| run.get("phases"))
        .and_then(Json::as_obj)
        .map(|phases| {
            phases
                .iter()
                .filter_map(|(k, v)| v.as_f64().map(|s| (k.clone(), s)))
                .collect()
        })
        .unwrap_or_default()
}

/// Compare single-thread wall-clock phases within the band.
fn check_wall_clock(baseline: &Json, current: &Json, table: &mut Vec<String>) -> Vec<String> {
    let mut failures = Vec::new();
    let base = baseline_run_phases(baseline);
    let cur = baseline_run_phases(current);
    if base.is_empty() {
        failures.push("baseline has no wall_clock.runs[0].phases".into());
    }
    for (name, b) in &base {
        let Some((_, c)) = cur.iter().find(|(n, _)| n == name) else {
            failures.push(format!("wall-clock phase `{name}` missing from current"));
            continue;
        };
        if *b < MIN_COMPARABLE_SECONDS && *c < MIN_COMPARABLE_SECONDS {
            table.push(format!(
                "  {:<32} {:>13.3}s {:>13.3}s  skip (below noise floor)",
                name, b, c
            ));
            continue;
        }
        let ratio = c / b.max(1e-9);
        let ok = (1.0 / WALL_CLOCK_BAND..=WALL_CLOCK_BAND).contains(&ratio);
        table.push(format!(
            "  {:<32} {:>13.3}s {:>13.3}s  {:.2}x {}",
            name,
            b,
            c,
            ratio,
            if ok { "ok" } else { "OUT OF BAND" }
        ));
        if !ok {
            failures.push(format!(
                "wall-clock phase `{name}`: {ratio:.2}x baseline (band is \
                 {:.2}x..{WALL_CLOCK_BAND:.0}x)",
                1.0 / WALL_CLOCK_BAND
            ));
        }
    }
    failures
}

/// The current run must itself report internal determinism.
fn check_flags(current: &Json) -> Vec<String> {
    ["bit_identical", "work_identical"]
        .iter()
        .filter(|key| !matches!(current.get(key), Some(Json::Bool(true))))
        .map(|key| format!("current run does not report `{key}: true`"))
        .collect()
}

/// Gate the measured multi-thread speedup when `--min-speedup` is given.
fn check_speedup(current: &Json, min: f64, table: &mut Vec<String>) -> Vec<String> {
    let speedup = current
        .get("wall_clock")
        .and_then(|w| w.get("speedup_total"))
        .and_then(Json::as_f64);
    let threads = current
        .get("wall_clock")
        .and_then(|w| w.get("parallel_threads"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    match speedup {
        Some(s) => {
            let ok = s >= min;
            table.push(format!(
                "  speedup_total at {threads} thread(s): {s:.2}x (floor {min:.2}x)  {}",
                if ok { "ok" } else { "TOO SLOW" }
            ));
            if ok {
                Vec::new()
            } else {
                vec![format!(
                    "multi-thread speedup {s:.2}x below the {min:.2}x floor"
                )]
            }
        }
        None => vec!["current run has no wall_clock.speedup_total".into()],
    }
}

/// Gate the lazy planner's work saving when `--min-lazy-ratio` is given.
/// Computed from the current run's own deterministic counters, so the
/// check is machine-independent: (evaluated + skipped) / evaluated.
fn check_lazy_ratio(current: &Json, min: f64, table: &mut Vec<String>) -> Vec<String> {
    let counter = |name: &str| {
        current
            .get("work")
            .and_then(|w| w.get(name))
            .and_then(Json::as_u64)
    };
    let Some(evaluated) = counter("placement.candidates_evaluated").filter(|&e| e > 0) else {
        return vec!["current run has no placement.candidates_evaluated work counter".into()];
    };
    let skipped = counter("placement.candidates_skipped_lazy").unwrap_or(0);
    let ratio = (evaluated + skipped) as f64 / evaluated as f64;
    let ok = ratio >= min;
    table.push(format!(
        "  lazy ratio: ({evaluated} evaluated + {skipped} skipped) / evaluated = \
         {ratio:.1}x (floor {min:.1}x)  {}",
        if ok { "ok" } else { "TOO DENSE" }
    ));
    if ok {
        Vec::new()
    } else {
        vec![format!(
            "lazy planner ratio {ratio:.1}x below the {min:.1}x floor"
        )]
    }
}

/// Gate the parallel arm's absolute wall-clock when `--max-seconds` is
/// given — the time CI actually pays (`wall_clock.runs` last entry).
fn check_max_seconds(current: &Json, max: f64, table: &mut Vec<String>) -> Vec<String> {
    let total = current
        .get("wall_clock")
        .and_then(|w| w.get("runs"))
        .and_then(Json::as_arr)
        .and_then(|runs| runs.last())
        .and_then(|run| run.get("total_s"))
        .and_then(Json::as_f64);
    match total {
        Some(t) => {
            let ok = t <= max;
            table.push(format!(
                "  parallel arm wall-clock: {t:.1}s (ceiling {max:.1}s)  {}",
                if ok { "ok" } else { "TOO SLOW" }
            ));
            if ok {
                Vec::new()
            } else {
                vec![format!(
                    "parallel arm took {t:.1}s, above the {max:.1}s ceiling"
                )]
            }
        }
        None => vec!["current run has no wall_clock.runs[last].total_s".into()],
    }
}

/// Append the delta tables as Markdown to `$GITHUB_STEP_SUMMARY`, or print
/// them to stdout when the variable is unset/empty (local runs get the same
/// report CI does). Plain-text tables go inside a code fence — exact
/// alignment, zero markup escaping concerns — with the verdict as a heading.
fn write_step_summary(tier: &str, sections: &[(&str, &[String])], failures: &[String]) {
    let body = render_step_summary(tier, sections, failures);
    let path = std::env::var("GITHUB_STEP_SUMMARY").unwrap_or_default();
    if path.is_empty() {
        print!("{body}");
        return;
    }
    use std::io::Write as _;
    match std::fs::OpenOptions::new().append(true).open(&path) {
        Ok(mut f) => {
            if let Err(e) = f.write_all(body.as_bytes()) {
                eprintln!("perf_gate: writing step summary: {e}");
            }
        }
        Err(e) => eprintln!("perf_gate: opening step summary {path}: {e}"),
    }
}

/// The Markdown body [`write_step_summary`] emits.
fn render_step_summary(tier: &str, sections: &[(&str, &[String])], failures: &[String]) -> String {
    let mut body = String::new();
    body.push_str(&format!(
        "### perf gate (`{tier}` tier): {}\n\n",
        if failures.is_empty() {
            "PASS ✅"
        } else {
            "FAIL ❌"
        }
    ));
    for (title, lines) in sections {
        body.push_str(&format!("**{title}**\n\n```text\n"));
        for l in *lines {
            body.push_str(l);
            body.push('\n');
        }
        body.push_str("```\n\n");
    }
    if !failures.is_empty() {
        body.push_str("**Failures**\n\n");
        for f in failures {
            body.push_str(&format!("- {f}\n"));
        }
        body.push('\n');
    }
    body
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("perf_gate: {msg}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let (baseline_doc, current) = match (load(&args.baseline), load(&args.current)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("perf_gate: {err}");
            }
            return ExitCode::from(2);
        }
    };
    let tier = args
        .tier
        .clone()
        .or_else(|| {
            current
                .get("scale")
                .and_then(Json::as_str)
                .map(str::to_string)
        })
        .unwrap_or_default();
    let baseline = match baseline_for_tier(&baseline_doc, &tier) {
        Ok(section) => section,
        Err(msg) => {
            eprintln!("perf_gate: {msg}");
            return ExitCode::from(2);
        }
    };

    let mut failures = Vec::new();
    let (sa, sb) = (
        baseline.get("scale").and_then(Json::as_str),
        current.get("scale").and_then(Json::as_str),
    );
    if sa != sb {
        failures.push(format!("scale mismatch: {sa:?} vs {sb:?}"));
    }

    println!(
        "perf gate [{tier}]: {} vs baseline {}\n",
        args.current, args.baseline
    );
    println!(
        "  {:<32} {:>14} {:>14}  deterministic work (exact)",
        "counter", "baseline", "current"
    );
    let mut work_table = Vec::new();
    failures.extend(check_work(baseline, &current, &mut work_table));
    work_table.iter().for_each(|l| println!("{l}"));

    println!(
        "\n  {:<32} {:>14} {:>14}  single-thread wall-clock ({}x band)",
        "phase", "baseline", "current", WALL_CLOCK_BAND
    );
    let mut wall_table = Vec::new();
    failures.extend(check_wall_clock(baseline, &current, &mut wall_table));
    wall_table.iter().for_each(|l| println!("{l}"));

    let mut speedup_table = Vec::new();
    if let Some(min) = args.min_speedup {
        println!();
        failures.extend(check_speedup(&current, min, &mut speedup_table));
        speedup_table.iter().for_each(|l| println!("{l}"));
    }

    let mut extra_table = Vec::new();
    if let Some(min) = args.min_lazy_ratio {
        println!();
        failures.extend(check_lazy_ratio(&current, min, &mut extra_table));
    }
    if let Some(max) = args.max_seconds {
        if args.min_lazy_ratio.is_none() {
            println!();
        }
        failures.extend(check_max_seconds(&current, max, &mut extra_table));
    }
    extra_table.iter().for_each(|l| println!("{l}"));

    failures.extend(check_flags(&current));

    let mut sections: Vec<(&str, &[String])> = vec![
        ("Deterministic work counters (exact)", &work_table[..]),
        ("Single-thread wall-clock (3x band)", &wall_table[..]),
    ];
    if !speedup_table.is_empty() {
        sections.push(("Multi-thread speedup", &speedup_table[..]));
    }
    if !extra_table.is_empty() {
        sections.push(("Lazy-planner & wall-clock ceilings", &extra_table[..]));
    }
    write_step_summary(&tier, &sections, &failures);

    if failures.is_empty() {
        println!("\nperf gate: PASS");
        ExitCode::SUCCESS
    } else {
        println!("\nperf gate: FAIL");
        for f in &failures {
            println!("  - {f}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::render_step_summary;

    #[test]
    fn step_summary_renders_verdict_sections_and_failures() {
        let work = ["  counter  1  1  ok".to_string()];
        let body = render_step_summary(
            "quick",
            &[("Deterministic work counters (exact)", &work[..])],
            &[],
        );
        assert!(
            body.contains("### perf gate (`quick` tier): PASS"),
            "{body}"
        );
        assert!(body.contains("```text\n  counter  1  1  ok\n```"), "{body}");
        let body = render_step_summary("quick", &[], &["counter drifted".to_string()]);
        assert!(body.contains("FAIL"), "{body}");
        assert!(body.contains("- counter drifted"), "{body}");
    }
}
