//! Machine-readable planner benchmark: `BENCH_placement.json`.
//!
//! Isolates the **placement phase** (the lazy-greedy hybrid planner) the
//! way `bench_parallel` covers the whole pipeline: the scenario is built
//! once, then planned on 1 thread and on N threads in dedicated pools,
//! asserting the two plans are bit-identical (replica-by-replica, plus
//! the predicted-cost bits) with bit-identical work counters. The JSON
//! quarantines machine-dependent timings under `"wall_clock"` and keeps
//! the deterministic counters in `"work"`, so `perf_gate` can compare
//! the two sections with different strictness.
//!
//! Two derived numbers ride along:
//!
//! * `"lazy_ratio"` — (candidates evaluated + lazily skipped) / evaluated,
//!   i.e. how many times fewer score evaluations the stale-set planner
//!   performs than a dense whole-matrix rescan per iteration. This is the
//!   headline of the incremental planner; `perf_gate --min-lazy-ratio`
//!   gates it.
//! * `"models"` — a small ablation re-planning the same instance under
//!   each hit-ratio model backend (paper | closed-form, plus che at quick
//!   scale where its per-object fixed point is affordable), recording
//!   replica counts, predicted mean hops, and plan seconds side by side.
//!
//! Usage: `bench_placement [--scale <tier>] [--quick] [--threads <n>]
//!                         [--metrics-out <path>] [--quiet]`

use cdn_bench::harness::{banner, progress, write_json, BenchArgs, PhaseTimings, Scale};
use cdn_core::{ModelBackend, PlanResult, Scenario, Strategy};
use cdn_telemetry as telemetry;
use cdn_workload::LambdaMode;
use std::fmt::Write as _;
use std::time::Instant;

/// Plan the scenario with the hybrid strategy on a dedicated pool of
/// `threads` threads, capturing the work counters the plan accumulated.
fn plan_at(threads: usize, scenario: &Scenario) -> (PhaseTimings, PlanResult, Vec<(String, u64)>) {
    telemetry::reset_metrics();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build thread pool");
    let (timings, plan) = pool.install(|| {
        let mut timings = PhaseTimings::new(threads);
        let plan = timings.time("placement", || scenario.plan(Strategy::Hybrid));
        (timings, plan)
    });
    (timings, plan, telemetry::registry().counter_values())
}

/// Replica-by-replica equality — stricter than comparing summary fields,
/// catching any pair of plans that happen to tie on count and cost.
fn plans_identical(scenario: &Scenario, a: &PlanResult, b: &PlanResult) -> bool {
    let (n, m) = (scenario.problem.n_servers(), scenario.problem.m_sites());
    a.predicted_cost.to_bits() == b.predicted_cost.to_bits()
        && (0..n).all(|i| {
            (0..m).all(|j| a.placement.is_replicated(i, j) == b.placement.is_replicated(i, j))
        })
}

/// The lazy planner's headline: how many times fewer candidate scores it
/// evaluates than a dense whole-matrix rescan of every greedy iteration.
fn lazy_ratio(work: &[(String, u64)]) -> Option<f64> {
    let get = |name: &str| work.iter().find(|(n, _)| n == name).map(|&(_, v)| v);
    let evaluated = get("placement.candidates_evaluated")?;
    let skipped = get("placement.candidates_skipped_lazy").unwrap_or(0);
    (evaluated > 0).then(|| (evaluated + skipped) as f64 / evaluated as f64)
}

fn main() {
    let args = BenchArgs::parse("bench_placement");
    let scale = args.scale;
    banner(
        "bench_placement: lazy-greedy hybrid planner, 1 thread vs N",
        scale,
    );

    let n_threads = args
        .threads
        .unwrap_or_else(rayon::current_num_threads)
        .max(1);

    let config = args.config(0.05, 0.0, LambdaMode::Uncacheable);
    progress("generating scenario");
    let scenario = Scenario::generate(&config);

    // Untimed warm-up: first-touch page faults and allocator growth land
    // here instead of skewing the 1-thread arm (always planned first).
    // Only worth its cost where runs are short enough for those one-off
    // effects to matter — at the large tiers a plan takes minutes and
    // the warm-up would nearly double the benchmark's wall-clock.
    if matches!(scale, Scale::Quick | Scale::Paper) {
        println!("  warm-up: untimed plan on {n_threads} thread(s)");
        progress("warm-up plan (untimed)");
        let _ = plan_at(n_threads, &scenario);
    }

    println!("  run 1/2: 1 thread");
    progress("run 1/2: 1 thread");
    let base = plan_at(1, &scenario);
    println!("  run 2/2: {n_threads} thread(s)");
    progress(&format!("run 2/2: {n_threads} thread(s)"));
    let multi = plan_at(n_threads, &scenario);

    let identical = plans_identical(&scenario, &base.1, &multi.1);
    let work_identical = base.2 == multi.2;
    let speedup = base.0.total_seconds() / multi.0.total_seconds().max(1e-12);
    let ratio = lazy_ratio(&base.2);

    println!(
        "  plan: {} replicas, predicted {:.4} mean hops",
        base.1.placement.replica_count(),
        base.1.predicted_mean_hops(&scenario.problem),
    );
    println!(
        "  1 thread {:.3}s | {n_threads} thread(s) {:.3}s | speedup {speedup:.2}x",
        base.0.total_seconds(),
        multi.0.total_seconds(),
    );
    match ratio {
        Some(r) => println!("  lazy ratio: {r:.1}x fewer candidate evaluations than dense"),
        None => println!("  lazy ratio: unavailable (no planner counters)"),
    }
    println!("  bit-identical plans:         {identical}");
    println!("  bit-identical work counters: {work_identical}");
    if !work_identical {
        let names: std::collections::BTreeSet<&str> = base
            .2
            .iter()
            .chain(multi.2.iter())
            .map(|(n, _)| n.as_str())
            .collect();
        for name in names {
            let get = |w: &[(String, u64)]| w.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
            let (a, b) = (get(&base.2), get(&multi.2));
            if a != b {
                println!("      {name}: 1-thread {a:?} vs N-thread {b:?}");
            }
        }
    }

    // Model-backend ablation on the same instance (N threads). The paper
    // backend's entry reuses the N-thread arm above (same plan, same
    // pool) instead of re-planning; Che's per-object fixed point is only
    // affordable at quick scale.
    let mut models: Vec<(ModelBackend, usize, f64, f64)> = vec![(
        ModelBackend::Paper,
        multi.1.placement.replica_count(),
        multi.1.predicted_mean_hops(&scenario.problem),
        multi.0.total_seconds(),
    )];
    println!(
        "  model {:<12} {:>5} replicas  predicted {:.4} hops  plan {:.3}s (reused run 2/2)",
        ModelBackend::Paper.name(),
        models[0].1,
        models[0].2,
        models[0].3,
    );
    let mut backends = vec![ModelBackend::ClosedForm];
    if scale == Scale::Quick {
        backends.push(ModelBackend::Che);
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(n_threads)
        .build()
        .expect("build thread pool");
    for backend in backends {
        progress(&format!("model ablation: {}", backend.name()));
        let t0 = Instant::now();
        let plan = pool.install(|| scenario.plan_with_model(Strategy::Hybrid, backend));
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "  model {:<12} {:>5} replicas  predicted {:.4} hops  plan {:.3}s",
            backend.name(),
            plan.placement.replica_count(),
            plan.predicted_mean_hops(&scenario.problem),
            secs,
        );
        models.push((
            backend,
            plan.placement.replica_count(),
            plan.predicted_mean_hops(&scenario.problem),
            secs,
        ));
    }

    // The cheap per-server knapsack the large tiers used to default to,
    // for a strategy dimension next to the model one: what the hybrid's
    // extra plan time buys in predicted cost.
    progress("baseline strategy: greedy-local");
    let t0 = Instant::now();
    let greedy = pool.install(|| scenario.plan(Strategy::GreedyLocal));
    let greedy_secs = t0.elapsed().as_secs_f64();
    println!(
        "  strategy greedy-local {:>5} replicas  predicted {:.4} hops  plan {:.3}s",
        greedy.placement.replica_count(),
        greedy.predicted_mean_hops(&scenario.problem),
        greedy_secs,
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": \"{}\",", scale.label());
    let _ = writeln!(json, "  \"strategy\": \"hybrid\",");
    let _ = writeln!(
        json,
        "  \"replicas\": {},",
        base.1.placement.replica_count()
    );
    let _ = writeln!(json, "  \"work\": {{");
    for (idx, (name, value)) in base.2.iter().enumerate() {
        let comma = if idx + 1 < base.2.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{name}\": {value}{comma}");
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"work_identical\": {work_identical},");
    let _ = writeln!(json, "  \"bit_identical\": {identical},");
    if let Some(r) = ratio {
        let _ = writeln!(json, "  \"lazy_ratio\": {r:.4},");
    }
    let _ = writeln!(json, "  \"models\": [");
    for (idx, (backend, replicas, hops, secs)) in models.iter().enumerate() {
        let comma = if idx + 1 < models.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"model\": \"{}\", \"replicas\": {replicas}, \
             \"predicted_mean_hops\": {hops:.6}, \"plan_s\": {secs:.6}}}{comma}",
            backend.name(),
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"strategies\": [");
    let _ = writeln!(
        json,
        "    {{\"strategy\": \"hybrid\", \"replicas\": {}, \
         \"predicted_mean_hops\": {:.6}, \"plan_s\": {:.6}}},",
        multi.1.placement.replica_count(),
        multi.1.predicted_mean_hops(&scenario.problem),
        multi.0.total_seconds(),
    );
    let _ = writeln!(
        json,
        "    {{\"strategy\": \"greedy-local\", \"replicas\": {}, \
         \"predicted_mean_hops\": {:.6}, \"plan_s\": {greedy_secs:.6}}}",
        greedy.placement.replica_count(),
        greedy.predicted_mean_hops(&scenario.problem),
    );
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"wall_clock\": {{");
    let _ = writeln!(json, "    \"baseline_threads\": 1,");
    let _ = writeln!(json, "    \"parallel_threads\": {n_threads},");
    let _ = writeln!(
        json,
        "    \"runs\": [{}, {}],",
        base.0.to_json(),
        multi.0.to_json()
    );
    let _ = writeln!(json, "    \"speedup_total\": {speedup:.4}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    write_json("BENCH_placement.json", &json);
    args.finish("bench_placement");

    assert!(
        identical,
        "multi-threaded plan diverged from single-threaded plan"
    );
    assert!(
        work_identical,
        "deterministic work counters diverged between thread counts"
    );
}
