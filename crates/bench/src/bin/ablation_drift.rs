//! Ablation E: popularity drift.
//!
//! The paper's workload is stationary, which favours *both* techniques
//! equally at planning time but hides a structural difference: replicas
//! store whole sites (drift-proof), caches store the instantaneous hot set
//! (must re-learn after every change). We sweep the drift rate — one
//! rank-rotation every `period` requests — and measure how the three
//! mechanisms degrade. This quantifies the paper's §2.1 intuition that
//! caching is "inherently dynamic".
//!
//! ```text
//! cargo run -p cdn-bench --release --bin ablation_drift -- \
//!     [--quick] [--threads <n>] [--trace-out <path>] [--metrics-out <path>]
//! ```

use cdn_bench::harness::{banner, generate_scenario, write_csv, BenchArgs};
use cdn_core::Strategy;
use cdn_sim::simulate_system_streams;
use cdn_workload::{DriftConfig, Drifted, LambdaMode};

fn main() {
    let args = BenchArgs::parse("ablation_drift");
    let scale = args.scale;
    banner("Ablation E: popularity drift vs delivery mechanism", scale);
    let config = args.config(0.05, 0.0, LambdaMode::Uncacheable);
    let scenario = generate_scenario(&config);
    let l = scenario.catalog.object_zipf.n() as u32;
    let lengths: Vec<u64> = (0..scenario.trace.n_servers())
        .map(|i| scenario.trace.len_for_server(i))
        .collect();

    let plans: Vec<_> = [Strategy::Replication, Strategy::Caching, Strategy::Hybrid]
        .iter()
        .map(|&s| (s, scenario.plan(s)))
        .collect();

    // Drift periods in requests-per-rotation; u64::MAX = stationary.
    let periods: &[(u64, &str)] = &[
        (u64::MAX, "stationary"),
        (100_000, "slow"),
        (10_000, "medium"),
        (1_000, "fast"),
    ];

    println!(
        "\n  {:<12} {:>14} {:>14} {:>14}",
        "drift", "replication", "caching", "hybrid"
    );
    let mut rows = Vec::new();
    for &(period, label) in periods {
        let mut cells = Vec::new();
        for (strategy, plan) in &plans {
            let factory: Option<&(dyn Fn(u64) -> Box<dyn cdn_core::cache::Cache> + Sync)> =
                if *strategy == Strategy::Replication {
                    Some(&|_| Box::new(cdn_core::cache::LruCache::new(0)))
                } else {
                    None
                };
            let report = simulate_system_streams(
                &scenario.problem,
                &plan.placement,
                &scenario.catalog,
                &scenario.config.sim,
                factory,
                &lengths,
                |server| {
                    Drifted::new(
                        scenario.trace.stream_for_server(server),
                        DriftConfig {
                            rotation_period: period,
                            objects_per_site: l,
                        },
                    )
                },
            );
            cells.push(report.mean_latency_ms);
        }
        println!(
            "  {:<12} {:>14.2} {:>14.2} {:>14.2}",
            label, cells[0], cells[1], cells[2]
        );
        rows.push(format!(
            "{label},{period},{:.3},{:.3},{:.3}",
            cells[0], cells[1], cells[2]
        ));
    }
    println!(
        "\n  replication is flat by construction (whole-site replicas cover\n\
         \x20 every object); caching and the hybrid's cache component lose hits\n\
         \x20 as rotations outpace the LRU's re-learning, converging toward the\n\
         \x20 replication curve at extreme drift."
    );
    write_csv(
        "ablation_drift.csv",
        "drift,period_requests,replication_ms,caching_ms,hybrid_ms",
        &rows,
    );
    args.finish("ablation_drift");
}
