//! Compact binary trace files: the `.events` format.
//!
//! A `.events` file is a versioned header followed by a flat stream of
//! `(key: u64, timestamp_us: u64)` pairs, both little-endian — the same
//! layout the delayed-hits measurement pipeline (tsunrise/delayed-hits)
//! uses, so real CDN traces convert with a plain `ingest` pass. The key
//! packs a [`crate::Request`]'s site in the high 32 bits and the object id
//! in the low 32 bits; foreign traces may use any 64-bit key, which replay
//! folds onto a scenario's catalog.
//!
//! Reading is streaming and allocation-bounded: [`EventsReader`] decodes
//! through a fixed 64 KiB buffer, so a multi-gigabyte trace never has more
//! than one chunk resident (the same discipline as
//! [`crate::stream::ChunkedStream`]). Truncated or corrupt files surface as
//! contextful [`TraceFileError`]s — never panics — naming the byte offset
//! where decoding stopped.

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, Read, Write};
use std::path::Path;

/// File magic: identifies a `.events` trace. 8 bytes, then a u32 version.
pub const EVENTS_MAGIC: &[u8; 8] = b"CDNEVTS\0";
/// Current format version. Readers reject anything newer.
pub const EVENTS_VERSION: u32 = 1;
/// Header length in bytes: magic + version + u64 event count.
pub const HEADER_LEN: usize = 8 + 4 + 8;
/// Bytes per encoded event: key + timestamp, both u64 LE.
pub const EVENT_LEN: usize = 16;

/// One trace record: a 64-bit object key and a microsecond timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Object identity. [`pack_key`] stores `(site << 32) | object` for
    /// synthetic exports; foreign traces may use any 64-bit value.
    pub key: u64,
    /// Event time in microseconds since the start of the trace.
    pub timestamp_us: u64,
}

/// Pack a `(site, object)` pair into the 64-bit key convention.
pub fn pack_key(site: u32, object: u32) -> u64 {
    (u64::from(site) << 32) | u64::from(object)
}

/// Inverse of [`pack_key`].
pub fn unpack_key(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

/// Why a `.events` file could not be read. Every variant names enough
/// context (path-free — callers add the path) to locate the corruption.
#[derive(Debug, PartialEq, Eq)]
pub enum TraceFileError {
    /// Underlying I/O failure (open, read, write).
    Io(String),
    /// The first 8 bytes are not [`EVENTS_MAGIC`].
    BadMagic([u8; 8]),
    /// Header declares a version this reader does not understand.
    UnsupportedVersion(u32),
    /// File ended inside the header: got `got` of [`HEADER_LEN`] bytes.
    TruncatedHeader { got: usize },
    /// File ended mid-event: `offset` is where the partial record starts,
    /// `got` how many of its [`EVENT_LEN`] bytes were present.
    TruncatedEvent { offset: u64, got: usize },
    /// Header promised `declared` events but the stream held `found`.
    CountMismatch { declared: u64, found: u64 },
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::BadMagic(got) => write!(
                f,
                "bad magic {got:?} (expected {EVENTS_MAGIC:?}) — not a .events trace"
            ),
            Self::UnsupportedVersion(v) => write!(
                f,
                "unsupported .events version {v} (this reader understands <= {EVENTS_VERSION})"
            ),
            Self::TruncatedHeader { got } => write!(
                f,
                "truncated header: {got} of {HEADER_LEN} bytes — file cut off or not a .events trace"
            ),
            Self::TruncatedEvent { offset, got } => write!(
                f,
                "truncated event at byte offset {offset}: {got} of {EVENT_LEN} bytes — file cut off mid-record"
            ),
            Self::CountMismatch { declared, found } => write!(
                f,
                "header declares {declared} event(s) but the file holds {found} — trace corrupt or rewritten mid-stream"
            ),
        }
    }
}

impl std::error::Error for TraceFileError {}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

/// Encode `events` into the full file image (header + records).
pub fn encode_events(events: &[TraceEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + events.len() * EVENT_LEN);
    out.extend_from_slice(EVENTS_MAGIC);
    out.extend_from_slice(&EVENTS_VERSION.to_le_bytes());
    out.extend_from_slice(&(events.len() as u64).to_le_bytes());
    for e in events {
        out.extend_from_slice(&e.key.to_le_bytes());
        out.extend_from_slice(&e.timestamp_us.to_le_bytes());
    }
    out
}

/// Decode a full in-memory file image. Convenience for tests and small
/// traces; large files should stream through [`EventsReader`].
pub fn decode_events(bytes: &[u8]) -> Result<Vec<TraceEvent>, TraceFileError> {
    EventsReader::new(bytes)?.collect()
}

/// Write `events` to `path` as a `.events` file.
pub fn write_events_file(path: &Path, events: &[TraceEvent]) -> Result<(), TraceFileError> {
    let mut f = File::create(path)?;
    f.write_all(&encode_events(events))?;
    Ok(())
}

/// Open `path` as a streaming `.events` reader. The header is validated
/// eagerly, so a non-trace file fails here, not on the first event.
pub fn open_events_file(path: &Path) -> Result<EventsReader<BufReader<File>>, TraceFileError> {
    EventsReader::new(BufReader::new(File::open(path)?))
}

/// Read a whole `.events` file into memory (streaming decode underneath).
pub fn read_events_file(path: &Path) -> Result<Vec<TraceEvent>, TraceFileError> {
    open_events_file(path)?.collect()
}

/// How many bytes [`EventsReader`] asks the source for per refill.
const CHUNK_BYTES: usize = 64 * 1024;

/// Streaming `.events` decoder over any byte source.
///
/// Construction reads and validates the header; iteration yields
/// `Result<TraceEvent, TraceFileError>` so corruption mid-file is reported
/// at the record where it happens. At most [`CHUNK_BYTES`] plus one partial
/// record are ever buffered.
pub struct EventsReader<R: Read> {
    src: R,
    /// Undecoded bytes carried between refills (always < [`EVENT_LEN`]).
    carry: Vec<u8>,
    buf: Vec<u8>,
    /// Next undecoded position in `buf`.
    pos: usize,
    /// Events the header promised.
    declared: u64,
    /// Events yielded so far.
    yielded: u64,
    /// Byte offset in the file of the next record to decode.
    offset: u64,
    /// Set after an error or clean end; iteration then stays `None`.
    done: bool,
}

impl<R: Read> EventsReader<R> {
    /// Wrap `src`, consuming and validating the header.
    pub fn new(mut src: R) -> Result<Self, TraceFileError> {
        let mut header = [0u8; HEADER_LEN];
        let got = read_up_to(&mut src, &mut header)?;
        if got < HEADER_LEN {
            // An empty or short prefix that *starts* like another file type
            // reads better as a magic error than a truncation.
            if got >= 8 && header[..8] != EVENTS_MAGIC[..] {
                let mut magic = [0u8; 8];
                magic.copy_from_slice(&header[..8]);
                return Err(TraceFileError::BadMagic(magic));
            }
            return Err(TraceFileError::TruncatedHeader { got });
        }
        if header[..8] != EVENTS_MAGIC[..] {
            let mut magic = [0u8; 8];
            magic.copy_from_slice(&header[..8]);
            return Err(TraceFileError::BadMagic(magic));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if version == 0 || version > EVENTS_VERSION {
            return Err(TraceFileError::UnsupportedVersion(version));
        }
        let declared = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
        Ok(Self {
            src,
            carry: Vec::new(),
            buf: Vec::new(),
            pos: 0,
            declared,
            yielded: 0,
            offset: HEADER_LEN as u64,
            done: false,
        })
    }

    /// The event count the header declares.
    pub fn declared_len(&self) -> u64 {
        self.declared
    }

    /// Pull the next chunk from the source, keeping any partial record.
    fn refill(&mut self) -> Result<usize, TraceFileError> {
        self.carry.clear();
        self.carry.extend_from_slice(&self.buf[self.pos..]);
        self.buf.clear();
        self.buf.resize(self.carry.len() + CHUNK_BYTES, 0);
        self.buf[..self.carry.len()].copy_from_slice(&self.carry);
        let got = read_up_to(&mut self.src, &mut self.buf[self.carry.len()..])?;
        self.buf.truncate(self.carry.len() + got);
        self.pos = 0;
        Ok(got)
    }
}

impl<R: Read> Iterator for EventsReader<R> {
    type Item = Result<TraceEvent, TraceFileError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if self.buf.len() - self.pos < EVENT_LEN {
            match self.refill() {
                Ok(_) => {}
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
            let rest = self.buf.len() - self.pos;
            if rest == 0 {
                self.done = true;
                if self.yielded != self.declared {
                    return Some(Err(TraceFileError::CountMismatch {
                        declared: self.declared,
                        found: self.yielded,
                    }));
                }
                return None;
            }
            if rest < EVENT_LEN {
                self.done = true;
                return Some(Err(TraceFileError::TruncatedEvent {
                    offset: self.offset,
                    got: rest,
                }));
            }
        }
        let at = self.pos;
        let key = u64::from_le_bytes(self.buf[at..at + 8].try_into().expect("8 bytes"));
        let timestamp_us =
            u64::from_le_bytes(self.buf[at + 8..at + 16].try_into().expect("8 bytes"));
        self.pos += EVENT_LEN;
        self.offset += EVENT_LEN as u64;
        self.yielded += 1;
        if self.yielded > self.declared {
            self.done = true;
            // More records than the header promised: the count field lies.
            return Some(Err(TraceFileError::CountMismatch {
                declared: self.declared,
                found: self.yielded,
            }));
        }
        Some(Ok(TraceEvent { key, timestamp_us }))
    }
}

/// `read` until `buf` is full or EOF; returns bytes read. Unlike
/// `read_exact` this distinguishes "short" from "error".
fn read_up_to<R: Read>(src: &mut R, buf: &mut [u8]) -> Result<usize, TraceFileError> {
    let mut filled = 0;
    while filled < buf.len() {
        match src.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(key: u64, ts: u64) -> TraceEvent {
        TraceEvent {
            key,
            timestamp_us: ts,
        }
    }

    #[test]
    fn round_trip_small() {
        let events = vec![ev(1, 10), ev(pack_key(3, 7), 20), ev(u64::MAX, u64::MAX)];
        let bytes = encode_events(&events);
        assert_eq!(bytes.len(), HEADER_LEN + 3 * EVENT_LEN);
        let back = decode_events(&bytes).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn empty_trace_round_trips() {
        let bytes = encode_events(&[]);
        assert_eq!(decode_events(&bytes).unwrap(), vec![]);
    }

    #[test]
    fn key_packing_round_trips() {
        for (site, object) in [(0, 0), (3, 7), (u32::MAX, 0), (0, u32::MAX)] {
            assert_eq!(unpack_key(pack_key(site, object)), (site, object));
        }
    }

    #[test]
    fn bad_magic_is_an_error_not_a_panic() {
        let mut bytes = encode_events(&[ev(1, 1)]);
        bytes[0] = b'X';
        match decode_events(&bytes) {
            Err(TraceFileError::BadMagic(_)) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
        // A short non-trace prefix also reads as bad magic.
        let junk = b"not an events file";
        assert!(matches!(
            decode_events(&junk[..]),
            Err(TraceFileError::BadMagic(_))
        ));
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut bytes = encode_events(&[ev(1, 1)]);
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            decode_events(&bytes),
            Err(TraceFileError::UnsupportedVersion(99))
        );
        bytes[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            decode_events(&bytes),
            Err(TraceFileError::UnsupportedVersion(0))
        );
    }

    #[test]
    fn truncated_header_reported_with_length() {
        let bytes = encode_events(&[ev(1, 1)]);
        assert_eq!(
            decode_events(&bytes[..10]),
            Err(TraceFileError::TruncatedHeader { got: 10 })
        );
        assert_eq!(
            decode_events(&[]),
            Err(TraceFileError::TruncatedHeader { got: 0 })
        );
    }

    #[test]
    fn truncated_event_reports_offset() {
        let events = vec![ev(1, 10), ev(2, 20)];
        let bytes = encode_events(&events);
        // Cut 5 bytes into the second record.
        let cut = HEADER_LEN + EVENT_LEN + 5;
        let mut r = EventsReader::new(&bytes[..cut]).unwrap();
        assert_eq!(r.next().unwrap().unwrap(), events[0]);
        match r.next().unwrap() {
            Err(TraceFileError::TruncatedEvent { offset, got }) => {
                assert_eq!(offset, (HEADER_LEN + EVENT_LEN) as u64);
                assert_eq!(got, 5);
            }
            other => panic!("expected TruncatedEvent, got {other:?}"),
        }
        assert!(r.next().is_none(), "reader stops after an error");
    }

    #[test]
    fn count_mismatch_detected_both_ways() {
        let mut bytes = encode_events(&[ev(1, 10), ev(2, 20)]);
        // Header claims 3 events, stream holds 2.
        bytes[12..20].copy_from_slice(&3u64.to_le_bytes());
        assert_eq!(
            decode_events(&bytes),
            Err(TraceFileError::CountMismatch {
                declared: 3,
                found: 2
            })
        );
        // Header claims 1 event, stream holds 2.
        bytes[12..20].copy_from_slice(&1u64.to_le_bytes());
        assert_eq!(
            decode_events(&bytes),
            Err(TraceFileError::CountMismatch {
                declared: 1,
                found: 2
            })
        );
    }

    #[test]
    fn streaming_reader_crosses_chunk_boundaries() {
        // Enough events that the 64 KiB refill happens mid-stream, with a
        // record straddling the boundary (16 | 65536 so none straddles —
        // force it by prepending an odd carry via a 1-byte reader).
        let events: Vec<TraceEvent> = (0..10_000).map(|i| ev(i, i * 3 + 1)).collect();
        let bytes = encode_events(&events);
        // A reader that returns at most 7 bytes per read() call exercises
        // carry handling on every boundary.
        struct Dribble<'a>(&'a [u8]);
        impl Read for Dribble<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                let n = self.0.len().min(buf.len()).min(7);
                buf[..n].copy_from_slice(&self.0[..n]);
                self.0 = &self.0[n..];
                Ok(n)
            }
        }
        let back: Vec<TraceEvent> = EventsReader::new(Dribble(&bytes))
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("cdn-trace-file-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.events");
        let events = vec![ev(5, 1), ev(6, 2), ev(5, 9)];
        write_events_file(&path, &events).unwrap();
        let r = open_events_file(&path).unwrap();
        assert_eq!(r.declared_len(), 3);
        assert_eq!(read_events_file(&path).unwrap(), events);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = read_events_file(Path::new("/nonexistent/trace.events")).unwrap_err();
        assert!(matches!(err, TraceFileError::Io(_)), "{err:?}");
        assert!(err.to_string().contains("I/O"), "{err}");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_events() -> impl proptest::strategy::Strategy<Value = Vec<TraceEvent>> {
            proptest::collection::vec((any::<u64>(), any::<u64>()), 0..300).prop_map(|pairs| {
                pairs
                    .into_iter()
                    .map(|(key, timestamp_us)| TraceEvent { key, timestamp_us })
                    .collect()
            })
        }

        proptest! {
            /// Arbitrary event vectors survive encode → decode byte-exactly,
            /// and the encoding length is the closed-form header + records.
            #[test]
            fn encode_decode_round_trips(events in arb_events()) {
                let bytes = encode_events(&events);
                prop_assert_eq!(bytes.len(), HEADER_LEN + events.len() * EVENT_LEN);
                let back = decode_events(&bytes).unwrap();
                prop_assert_eq!(back, events);
            }

            /// Every proper prefix of a valid file decodes to an error —
            /// never a panic, never a silently short success.
            #[test]
            fn any_truncation_is_an_error(events in arb_events(), frac in 0.0f64..1.0) {
                let bytes = encode_events(&events);
                let cut = ((bytes.len() as f64) * frac) as usize;
                if cut < bytes.len() {
                    prop_assert!(decode_events(&bytes[..cut]).is_err());
                }
            }

            /// Corrupting any single header byte is caught by one of the
            /// structured checks (magic, version, or count).
            #[test]
            fn header_corruption_is_detected(events in arb_events(), at in 0usize..HEADER_LEN) {
                let mut bytes = encode_events(&events);
                bytes[at] ^= 0xFF;
                prop_assert!(decode_events(&bytes).is_err());
            }
        }
    }
}
