//! Deterministic per-server request streams.
//!
//! The trace-driven simulator consumes one stream per CDN server. Streams
//! are generated lazily from a seed (a paper-scale run is millions of
//! requests; materialising it would waste hundreds of megabytes) and are
//! fully deterministic: the same `(TraceSpec, server)` always yields the
//! same sequence, regardless of how other servers' streams are consumed.

use crate::demand::DemandMatrix;
use crate::zipf::ZipfLike;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a λ-flagged request behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LambdaMode {
    /// λ-requests return uncacheable documents (cgi-bin, banners): never
    /// stored in the cache. First experiment family in the paper.
    Uncacheable,
    /// λ-requests hit objects that have expired: a cached copy must be
    /// refreshed from the nearest replica under strong consistency. Second
    /// experiment family in the paper.
    Expired,
}

/// Flavour of an individual request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// Ordinary cacheable request.
    Normal,
    /// Target object has expired; a cache hit still pays a refresh trip.
    Expired,
    /// Response is uncacheable; the cache is bypassed entirely.
    Uncacheable,
}

/// One client request as seen by a first-hop server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Site id (index into the catalog).
    pub site: u32,
    /// Object rank within the site, 0-based (0 = most popular).
    pub object: u32,
    pub flavor: Flavor,
}

/// Immutable description of a full trace; hand out per-server streams with
/// [`TraceSpec::stream_for_server`].
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Per-server site-choice CDFs (cumulative over sites).
    site_cdfs: Vec<Vec<f64>>,
    /// Requests per server.
    lengths: Vec<u64>,
    object_zipf: ZipfLike,
    /// λ_j per site — the paper's §3.3 has "each web site O_j provide an
    /// estimation of the fraction λ_j of requests that return uncacheable
    /// documents".
    lambdas: Vec<f64>,
    lambda_mode: LambdaMode,
    seed: u64,
}

impl TraceSpec {
    /// Build a spec from the demand matrix and the shared object-popularity
    /// law. `lambda` is the fraction of requests carrying the λ flag.
    ///
    /// # Panics
    /// Panics if `lambda` is outside `[0, 1]`.
    pub fn new(
        demand: &DemandMatrix,
        object_zipf: ZipfLike,
        lambda: f64,
        lambda_mode: LambdaMode,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&lambda),
            "lambda {lambda} out of [0,1]"
        );
        Self::with_per_site_lambda(
            demand,
            object_zipf,
            vec![lambda; demand.m_sites()],
            lambda_mode,
            seed,
        )
    }

    /// Build with heterogeneous per-site λ (the paper's actual model — a
    /// scalar λ is the special case of all sites equal).
    ///
    /// # Panics
    /// Panics if any λ is outside `[0, 1]` or the vector's length differs
    /// from the demand matrix's site count.
    pub fn with_per_site_lambda(
        demand: &DemandMatrix,
        object_zipf: ZipfLike,
        lambdas: Vec<f64>,
        lambda_mode: LambdaMode,
        seed: u64,
    ) -> Self {
        assert_eq!(lambdas.len(), demand.m_sites(), "lambda vector shape");
        assert!(
            lambdas.iter().all(|l| (0.0..=1.0).contains(l)),
            "per-site lambda out of [0,1]"
        );
        let site_cdfs = (0..demand.n_servers())
            .map(|i| {
                let row = demand.server_row(i);
                let total = demand.server_total(i) as f64;
                let mut acc = 0.0;
                let mut cdf: Vec<f64> = row
                    .iter()
                    .map(|&r| {
                        acc += r as f64;
                        if total > 0.0 {
                            acc / total
                        } else {
                            1.0
                        }
                    })
                    .collect();
                if let Some(last) = cdf.last_mut() {
                    *last = 1.0;
                }
                cdf
            })
            .collect();
        let lengths = (0..demand.n_servers())
            .map(|i| demand.server_total(i))
            .collect();
        Self {
            site_cdfs,
            lengths,
            object_zipf,
            lambdas,
            lambda_mode,
            seed,
        }
    }

    /// Number of servers the spec covers.
    pub fn n_servers(&self) -> usize {
        self.site_cdfs.len()
    }

    /// Requests the stream for `server` will yield.
    pub fn len_for_server(&self, server: usize) -> u64 {
        self.lengths[server]
    }

    /// The request-weighted mean λ across sites (0 when empty).
    pub fn mean_lambda(&self) -> f64 {
        if self.lambdas.is_empty() {
            0.0
        } else {
            self.lambdas.iter().sum::<f64>() / self.lambdas.len() as f64
        }
    }

    /// λ of one site.
    pub fn lambda_for_site(&self, site: usize) -> f64 {
        self.lambdas[site]
    }

    /// Create the lazy stream for `server`.
    pub fn stream_for_server(&self, server: usize) -> ServerStream {
        // Independent per-server seeding: SplitMix64 over (seed, server).
        let mix = splitmix64(self.seed ^ splitmix64(server as u64 + 0x9E37_79B9_7F4A_7C15));
        ServerStream {
            site_cdf: self.site_cdfs[server].clone(),
            object_zipf: self.object_zipf.clone(),
            lambdas: self.lambdas.clone().into(),
            lambda_mode: self.lambda_mode,
            remaining: self.lengths[server],
            rng: StdRng::seed_from_u64(mix),
        }
    }
}

/// Lazy request iterator for one server.
#[derive(Debug, Clone)]
pub struct ServerStream {
    site_cdf: Vec<f64>,
    object_zipf: ZipfLike,
    lambdas: std::sync::Arc<[f64]>,
    lambda_mode: LambdaMode,
    remaining: u64,
    rng: StdRng,
}

impl Iterator for ServerStream {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let u: f64 = self.rng.gen();
        let site = self.site_cdf.partition_point(|&c| c < u) as u32;
        let object = (self.object_zipf.sample(&mut self.rng) - 1) as u32;
        let lambda = self.lambdas[site as usize];
        let flavor = if lambda > 0.0 && self.rng.gen_bool(lambda) {
            match self.lambda_mode {
                LambdaMode::Uncacheable => Flavor::Uncacheable,
                LambdaMode::Expired => Flavor::Expired,
            }
        } else {
            Flavor::Normal
        };
        Some(Request {
            site,
            object,
            flavor,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for ServerStream {}

/// SplitMix64 step, used to derive independent per-server seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadConfig;
    use crate::site::SiteCatalog;

    fn spec(lambda: f64, mode: LambdaMode) -> TraceSpec {
        let cat = SiteCatalog::generate(&WorkloadConfig::small(), 3);
        let demand = DemandMatrix::generate(&cat, 4, 4);
        TraceSpec::new(&demand, cat.object_zipf.clone(), lambda, mode, 11)
    }

    #[test]
    fn stream_length_matches_demand() {
        let s = spec(0.0, LambdaMode::Uncacheable);
        for i in 0..s.n_servers() {
            let count = s.stream_for_server(i).count() as u64;
            assert_eq!(count, s.len_for_server(i), "server {i}");
        }
    }

    #[test]
    fn exact_size_iterator_contract() {
        let s = spec(0.0, LambdaMode::Uncacheable);
        let mut stream = s.stream_for_server(0);
        let total = stream.len();
        stream.next();
        assert_eq!(stream.len(), total - 1);
    }

    #[test]
    fn lambda_zero_yields_only_normal() {
        let s = spec(0.0, LambdaMode::Expired);
        assert!(s.stream_for_server(1).all(|r| r.flavor == Flavor::Normal));
    }

    #[test]
    fn lambda_fraction_approximately_respected() {
        let s = spec(0.1, LambdaMode::Expired);
        let reqs: Vec<Request> = s.stream_for_server(0).collect();
        let flagged = reqs.iter().filter(|r| r.flavor == Flavor::Expired).count();
        let frac = flagged as f64 / reqs.len() as f64;
        assert!((frac - 0.1).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn lambda_mode_selects_flavor() {
        let s = spec(1.0, LambdaMode::Uncacheable);
        assert!(s
            .stream_for_server(2)
            .all(|r| r.flavor == Flavor::Uncacheable));
    }

    #[test]
    fn site_mix_matches_demand_row() {
        let cat = SiteCatalog::generate(&WorkloadConfig::small(), 3);
        let demand = DemandMatrix::generate(&cat, 2, 4);
        let s = TraceSpec::new(
            &demand,
            cat.object_zipf.clone(),
            0.0,
            LambdaMode::Uncacheable,
            5,
        );
        let mut counts = vec![0u64; demand.m_sites()];
        for r in s.stream_for_server(0) {
            counts[r.site as usize] += 1;
        }
        let total = demand.server_total(0) as f64;
        for (j, &count) in counts.iter().enumerate() {
            let expected = demand.requests(0, j) as f64 / total;
            let got = count as f64 / total;
            assert!(
                (expected - got).abs() < 0.03,
                "site {j}: expected {expected}, got {got}"
            );
        }
    }

    #[test]
    fn object_ranks_follow_zipf() {
        let s = spec(0.0, LambdaMode::Uncacheable);
        let reqs: Vec<Request> = s.stream_for_server(0).collect();
        let rank1 = reqs.iter().filter(|r| r.object == 0).count() as f64 / reqs.len() as f64;
        let z = &s.object_zipf;
        assert!(
            (rank1 - z.pmf(1)).abs() < 0.03,
            "rank-1 freq {rank1} vs pmf {}",
            z.pmf(1)
        );
        // Objects are 0-based and within range.
        assert!(reqs.iter().all(|r| (r.object as usize) < z.n()));
    }

    #[test]
    fn streams_are_deterministic_and_independent() {
        let s = spec(0.2, LambdaMode::Expired);
        let a: Vec<Request> = s.stream_for_server(1).take(100).collect();
        let b: Vec<Request> = s.stream_for_server(1).take(100).collect();
        assert_eq!(a, b);
        let c: Vec<Request> = s.stream_for_server(2).take(100).collect();
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic]
    fn invalid_lambda_panics() {
        spec(1.5, LambdaMode::Expired);
    }

    #[test]
    fn per_site_lambda_respected() {
        let cat = SiteCatalog::generate(&WorkloadConfig::small(), 3);
        let demand = DemandMatrix::generate(&cat, 2, 4);
        let m = demand.m_sites();
        // Site 0 fully uncacheable, everything else fully cacheable.
        let mut lambdas = vec![0.0; m];
        lambdas[0] = 1.0;
        let s = TraceSpec::with_per_site_lambda(
            &demand,
            cat.object_zipf.clone(),
            lambdas,
            LambdaMode::Uncacheable,
            8,
        );
        for r in s.stream_for_server(0) {
            if r.site == 0 {
                assert_eq!(r.flavor, Flavor::Uncacheable);
            } else {
                assert_eq!(r.flavor, Flavor::Normal);
            }
        }
        assert_eq!(s.lambda_for_site(0), 1.0);
        assert!((s.mean_lambda() - 1.0 / m as f64).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn per_site_lambda_shape_mismatch_panics() {
        let cat = SiteCatalog::generate(&WorkloadConfig::small(), 3);
        let demand = DemandMatrix::generate(&cat, 2, 4);
        TraceSpec::with_per_site_lambda(
            &demand,
            cat.object_zipf.clone(),
            vec![0.1; 3],
            LambdaMode::Expired,
            0,
        );
    }
}
