//! Non-stationary popularity: drifting object identities.
//!
//! The paper's workload is stationary — object k of a site is forever its
//! k-th most popular page. Real sites churn: yesterday's headline is cold
//! tomorrow. This module models that with a *rotating rank map*: the
//! instantaneous popularity law stays exactly Zipf(θ), but which concrete
//! object occupies each rank rotates by one every `period` requests.
//!
//! Static replication is, by construction, indifferent to drift (it stores
//! whole sites); the LRU cache must re-learn the hot set after every
//! rotation. The `ablation_drift` benchmark uses this to measure how fast
//! popularity may drift before caching's advantage erodes.

use crate::trace::Request;

/// Drift parameters.
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// Requests between rotations of the rank map. `u64::MAX` disables
    /// drift entirely.
    pub rotation_period: u64,
    /// Objects per site (the modulus of the rotation).
    pub objects_per_site: u32,
}

impl DriftConfig {
    /// No drift: the identity transform.
    pub fn stationary(objects_per_site: u32) -> Self {
        Self {
            rotation_period: u64::MAX,
            objects_per_site,
        }
    }
}

/// Iterator adaptor applying popularity drift to a request stream.
///
/// At rotation epoch `e`, the object at rank `r` is `(r + e) mod L`: every
/// rotation retires the hottest object and promotes a fresh one, while the
/// rank *distribution* of the underlying stream is untouched.
#[derive(Debug, Clone)]
pub struct Drifted<I> {
    inner: I,
    config: DriftConfig,
    emitted: u64,
}

impl<I> Drifted<I> {
    pub fn new(inner: I, config: DriftConfig) -> Self {
        assert!(
            config.rotation_period > 0,
            "rotation period must be positive"
        );
        assert!(config.objects_per_site > 0, "need at least one object");
        Self {
            inner,
            config,
            emitted: 0,
        }
    }

    /// Current rotation epoch.
    fn epoch(&self) -> u64 {
        if self.config.rotation_period == u64::MAX {
            0
        } else {
            self.emitted / self.config.rotation_period
        }
    }
}

impl<I: Iterator<Item = Request>> Iterator for Drifted<I> {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        let mut req = self.inner.next()?;
        let l = self.config.objects_per_site as u64;
        let shift = self.epoch() % l;
        req.object = ((req.object as u64 + shift) % l) as u32;
        self.emitted += 1;
        Some(req)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Flavor;

    fn reqs(objects: &[u32]) -> Vec<Request> {
        objects
            .iter()
            .map(|&o| Request {
                site: 0,
                object: o,
                flavor: Flavor::Normal,
            })
            .collect()
    }

    #[test]
    fn stationary_config_is_identity() {
        let input = reqs(&[0, 1, 2, 3, 4]);
        let out: Vec<Request> =
            Drifted::new(input.clone().into_iter(), DriftConfig::stationary(10)).collect();
        assert_eq!(out, input);
    }

    #[test]
    fn rotation_shifts_objects_per_epoch() {
        let input = reqs(&[0, 0, 0, 0, 0, 0]);
        let cfg = DriftConfig {
            rotation_period: 2,
            objects_per_site: 10,
        };
        let out: Vec<u32> = Drifted::new(input.into_iter(), cfg)
            .map(|r| r.object)
            .collect();
        // Epochs: requests 0-1 shift 0, 2-3 shift 1, 4-5 shift 2.
        assert_eq!(out, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn objects_wrap_at_site_size() {
        let input = reqs(&[3, 3]);
        let cfg = DriftConfig {
            rotation_period: 1,
            objects_per_site: 4,
        };
        let out: Vec<u32> = Drifted::new(input.into_iter(), cfg)
            .map(|r| r.object)
            .collect();
        // Shifts 0 then 1: 3, (3+1)%4 = 0.
        assert_eq!(out, vec![3, 0]);
    }

    #[test]
    fn marginal_distribution_preserved_within_an_epoch() {
        // Rank frequencies in any single epoch equal the input frequencies.
        let input: Vec<Request> = (0..1000).map(|i| reqs(&[i % 7])[0]).collect();
        let cfg = DriftConfig {
            rotation_period: 1000,
            objects_per_site: 7,
        };
        let out: Vec<u32> = Drifted::new(input.into_iter(), cfg)
            .map(|r| r.object)
            .collect();
        let mut in_counts = [0u32; 7];
        let mut out_counts = [0u32; 7];
        for i in 0..1000u32 {
            in_counts[(i % 7) as usize] += 1;
        }
        for &o in &out {
            out_counts[o as usize] += 1;
        }
        assert_eq!(in_counts, out_counts); // shift 0 for the whole epoch
    }

    #[test]
    fn preserves_site_and_flavor() {
        let input = vec![Request {
            site: 5,
            object: 2,
            flavor: Flavor::Expired,
        }];
        let cfg = DriftConfig {
            rotation_period: 1,
            objects_per_site: 4,
        };
        let out: Vec<Request> = Drifted::new(input.into_iter(), cfg).collect();
        assert_eq!(out[0].site, 5);
        assert_eq!(out[0].flavor, Flavor::Expired);
    }

    #[test]
    fn size_hint_passthrough() {
        let input = reqs(&[1, 2, 3]);
        let d = Drifted::new(input.into_iter(), DriftConfig::stationary(5));
        assert_eq!(d.size_hint(), (3, Some(3)));
    }

    #[test]
    #[should_panic]
    fn zero_period_panics() {
        let cfg = DriftConfig {
            rotation_period: 0,
            objects_per_site: 4,
        };
        let _ = Drifted::new(reqs(&[0]).into_iter(), cfg);
    }
}
