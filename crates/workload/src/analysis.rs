//! Empirical statistics of generated traces.
//!
//! The reproduction's claims lean on the workload having the right shape
//! (Zipf-like concentration, heavy-tailed footprint). This module measures
//! a trace's shape *empirically* so tests can close the loop between the
//! generator's configuration and what the simulator actually sees, and so
//! users bringing their own traces can compare them against SURGE's.

use crate::trace::Request;
use std::collections::HashMap;

/// Aggregated statistics over a request stream.
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// Total requests observed.
    pub total: u64,
    /// Requests per site id.
    pub site_counts: HashMap<u32, u64>,
    /// Requests per (site, object).
    pub object_counts: HashMap<(u32, u32), u64>,
    /// Unique objects seen after each power-of-two request count — the
    /// footprint curve `(requests, distinct objects)`.
    pub footprint: Vec<(u64, u64)>,
}

impl TraceStats {
    /// Consume a stream and accumulate statistics.
    pub fn from_requests(requests: impl Iterator<Item = Request>) -> Self {
        let mut total = 0u64;
        let mut site_counts: HashMap<u32, u64> = HashMap::new();
        let mut object_counts: HashMap<(u32, u32), u64> = HashMap::new();
        let mut footprint = Vec::new();
        let mut next_mark = 1u64;
        for r in requests {
            total += 1;
            *site_counts.entry(r.site).or_insert(0) += 1;
            *object_counts.entry((r.site, r.object)).or_insert(0) += 1;
            if total == next_mark {
                footprint.push((total, object_counts.len() as u64));
                next_mark *= 2;
            }
        }
        footprint.push((total, object_counts.len() as u64));
        Self {
            total,
            site_counts,
            object_counts,
            footprint,
        }
    }

    /// Number of distinct objects referenced.
    pub fn distinct_objects(&self) -> usize {
        self.object_counts.len()
    }

    /// Fraction of requests answered by the most popular `frac` of the
    /// *distinct* objects (e.g. `concentration(0.1)` = share of traffic on
    /// the top-10% objects). Returns 0 for an empty trace.
    ///
    /// # Panics
    /// Panics unless `frac` is within `(0, 1]`.
    pub fn concentration(&self, frac: f64) -> f64 {
        assert!(frac > 0.0 && frac <= 1.0, "frac {frac} out of (0,1]");
        if self.total == 0 {
            return 0.0;
        }
        let mut counts: Vec<u64> = self.object_counts.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let k = ((counts.len() as f64 * frac).ceil() as usize).max(1);
        let top: u64 = counts.iter().take(k).sum();
        top as f64 / self.total as f64
    }

    /// Shannon entropy (bits) of the object-reference distribution. Low
    /// entropy = concentrated (cache-friendly) traffic.
    pub fn entropy_bits(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.total as f64;
        -self
            .object_counts
            .values()
            .map(|&c| {
                let p = c as f64 / n;
                p * p.log2()
            })
            .sum::<f64>()
    }

    /// Least-squares slope of log(frequency) vs log(rank) over the top
    /// `ranks` objects — an estimate of the Zipf exponent θ (returned
    /// positive). `None` if fewer than 3 ranks are available.
    ///
    /// Note: a whole-trace estimate mixes objects of *differently popular
    /// sites*, which flattens the head; to recover a site-internal θ use
    /// [`Self::zipf_exponent_estimate_for_site`].
    pub fn zipf_exponent_estimate(&self, ranks: usize) -> Option<f64> {
        let counts: Vec<u64> = self.object_counts.values().copied().collect();
        Self::fit_exponent(counts, ranks)
    }

    /// Zipf-exponent estimate restricted to one site's objects.
    pub fn zipf_exponent_estimate_for_site(&self, site: u32, ranks: usize) -> Option<f64> {
        let counts: Vec<u64> = self
            .object_counts
            .iter()
            .filter(|((s, _), _)| *s == site)
            .map(|(_, &c)| c)
            .collect();
        Self::fit_exponent(counts, ranks)
    }

    fn fit_exponent(mut counts: Vec<u64>, ranks: usize) -> Option<f64> {
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let k = ranks.min(counts.len());
        if k < 3 {
            return None;
        }
        let points: Vec<(f64, f64)> = counts[..k]
            .iter()
            .enumerate()
            .map(|(idx, &c)| (((idx + 1) as f64).ln(), (c.max(1) as f64).ln()))
            .collect();
        let n = points.len() as f64;
        let sx: f64 = points.iter().map(|p| p.0).sum();
        let sy: f64 = points.iter().map(|p| p.1).sum();
        let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return None;
        }
        Some(-((n * sxy - sx * sy) / denom))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadConfig;
    use crate::demand::DemandMatrix;
    use crate::site::SiteCatalog;
    use crate::trace::{Flavor, LambdaMode, TraceSpec};

    fn generated_stats(theta: f64) -> TraceStats {
        let mut cfg = WorkloadConfig::small();
        cfg.theta = theta;
        cfg.objects_per_site = 200;
        cfg.base_requests = 20_000;
        let cat = SiteCatalog::generate(&cfg, 5);
        let demand = DemandMatrix::generate(&cat, 2, 6);
        let spec = TraceSpec::new(
            &demand,
            cat.object_zipf.clone(),
            0.0,
            LambdaMode::Uncacheable,
            7,
        );
        TraceStats::from_requests(spec.stream_for_server(0))
    }

    fn hand_requests(objects: &[u32]) -> Vec<Request> {
        objects
            .iter()
            .map(|&o| Request {
                site: 0,
                object: o,
                flavor: Flavor::Normal,
            })
            .collect()
    }

    #[test]
    fn counts_are_exact() {
        let s = TraceStats::from_requests(hand_requests(&[1, 1, 2, 3, 3, 3]).into_iter());
        assert_eq!(s.total, 6);
        assert_eq!(s.distinct_objects(), 3);
        assert_eq!(s.object_counts[&(0, 3)], 3);
        assert_eq!(s.site_counts[&0], 6);
    }

    #[test]
    fn footprint_is_monotone_and_ends_at_distinct_count() {
        let s = generated_stats(1.0);
        for w in s.footprint.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(s.footprint.last().unwrap().1, s.distinct_objects() as u64);
    }

    #[test]
    fn concentration_bounds() {
        let s = generated_stats(1.0);
        let c10 = s.concentration(0.1);
        let c100 = s.concentration(1.0);
        assert!(c10 > 0.1, "top-10% should exceed uniform share, got {c10}");
        assert!((c100 - 1.0).abs() < 1e-12);
        assert!(c10 < c100);
    }

    #[test]
    fn higher_theta_more_concentrated_lower_entropy() {
        let flat = generated_stats(0.4);
        let skewed = generated_stats(1.4);
        assert!(skewed.concentration(0.05) > flat.concentration(0.05));
        assert!(skewed.entropy_bits() < flat.entropy_bits());
    }

    #[test]
    fn entropy_of_uniform_trace_is_log2_n() {
        let s = TraceStats::from_requests(hand_requests(&[0, 1, 2, 3]).into_iter());
        assert!((s.entropy_bits() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_exponent_recovered_within_tolerance() {
        for theta in [0.7, 1.0] {
            let s = generated_stats(theta);
            // Per-site estimate on the busiest site, head ranks only (the
            // tail is noisy at finite sample sizes).
            let busiest = *s
                .site_counts
                .iter()
                .max_by_key(|(_, &c)| c)
                .map(|(site, _)| site)
                .unwrap();
            let est = s
                .zipf_exponent_estimate_for_site(busiest, 30)
                .expect("enough ranks");
            assert!((est - theta).abs() < 0.25, "theta {theta}: estimated {est}");
        }
    }

    #[test]
    fn whole_trace_estimate_is_flatter_than_site_estimate() {
        let s = generated_stats(1.0);
        let busiest = *s
            .site_counts
            .iter()
            .max_by_key(|(_, &c)| c)
            .map(|(site, _)| site)
            .unwrap();
        let global = s.zipf_exponent_estimate(30).unwrap();
        let per_site = s.zipf_exponent_estimate_for_site(busiest, 30).unwrap();
        assert!(global < per_site, "global {global} vs site {per_site}");
    }

    #[test]
    fn exponent_estimate_needs_three_ranks() {
        let s = TraceStats::from_requests(hand_requests(&[0, 1]).into_iter());
        assert!(s.zipf_exponent_estimate(10).is_none());
    }

    #[test]
    #[should_panic]
    fn concentration_zero_frac_panics() {
        generated_stats(1.0).concentration(0.0);
    }
}
