//! Workload configuration with the paper's defaults.

/// SURGE-style object-size model: a lognormal body with a bounded-Pareto
/// tail. Sizes are in bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeModel {
    /// Probability an object is drawn from the Pareto tail.
    pub tail_prob: f64,
    /// Lognormal body parameters (of ln-bytes).
    pub body_mu: f64,
    pub body_sigma: f64,
    /// Pareto tail parameters.
    pub tail_alpha: f64,
    pub tail_lo: f64,
    pub tail_hi: f64,
    /// Floor applied to every size so zero-byte objects cannot occur.
    pub min_bytes: u64,
}

impl SizeModel {
    /// SURGE's published fit for web object sizes: lognormal body
    /// (µ = 9.357, σ = 1.318 in ln-bytes, i.e. median ≈ 11.6 KB) with a
    /// Pareto(α = 1.1) tail starting at 133 KB, capped at 10 MB.
    pub fn surge_default() -> Self {
        Self {
            tail_prob: 0.07,
            body_mu: 9.357,
            body_sigma: 1.318,
            tail_alpha: 1.1,
            tail_lo: 133_000.0,
            tail_hi: 10_000_000.0,
            min_bytes: 64,
        }
    }

    /// Constant-size objects — handy in tests where byte-granularity
    /// effects would obscure the property under test.
    pub fn constant(bytes: u64) -> Self {
        Self {
            tail_prob: 0.0,
            body_mu: (bytes as f64).ln(),
            body_sigma: 0.0,
            tail_alpha: 1.0,
            tail_lo: 1.0,
            tail_hi: 2.0,
            min_bytes: bytes,
        }
    }
}

/// Relative request volume of the three site-popularity classes. The paper
/// generates "50 sites of low popularity, 100 sites of medium popularity and
/// 50 sites of high popularity" (digit reconstruction; see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassMix {
    /// Fraction of sites in each class (must sum to 1).
    pub low_frac: f64,
    pub medium_frac: f64,
    /// Request multiplier of each class relative to `base_requests`.
    pub low_weight: f64,
    pub medium_weight: f64,
    pub high_weight: f64,
}

impl ClassMix {
    pub fn paper_default() -> Self {
        Self {
            low_frac: 0.25,
            medium_frac: 0.5,
            low_weight: 1.0,
            medium_weight: 4.0,
            high_weight: 16.0,
        }
    }

    pub fn high_frac(&self) -> f64 {
        1.0 - self.low_frac - self.medium_frac
    }
}

/// Full workload configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of web sites (M).
    pub m_sites: usize,
    /// Objects per site (L).
    pub objects_per_site: usize,
    /// Zipf exponent θ of the object popularity inside each site.
    pub theta: f64,
    /// Requests a low-popularity site receives in total across all servers.
    pub base_requests: u64,
    pub class_mix: ClassMix,
    pub size_model: SizeModel,
}

impl WorkloadConfig {
    /// The paper's evaluation scale: M = 200 sites, L = 1000 objects,
    /// θ = 1.0 (see DESIGN.md for the digit reconstructions).
    pub fn paper_default() -> Self {
        Self {
            m_sites: 200,
            objects_per_site: 1000,
            theta: 1.0,
            base_requests: 10_000,
            class_mix: ClassMix::paper_default(),
            size_model: SizeModel::surge_default(),
        }
    }

    /// The internet-scale tier: M = 400 sites of L = 5000 objects (2M
    /// objects total). With the paper's class mix (mean weight 6.25) and
    /// `base_requests = 40_000`, the trace totals 400 × 6.25 × 40 000 =
    /// 10^8 requests — the regime where sharded parallel simulation pays.
    pub fn large() -> Self {
        Self {
            m_sites: 400,
            objects_per_site: 5000,
            theta: 1.0,
            base_requests: 40_000,
            class_mix: ClassMix::paper_default(),
            size_model: SizeModel::surge_default(),
        }
    }

    /// A small configuration for tests and examples.
    pub fn small() -> Self {
        Self {
            m_sites: 15,
            objects_per_site: 50,
            theta: 1.0,
            base_requests: 2_000,
            class_mix: ClassMix::paper_default(),
            size_model: SizeModel::surge_default(),
        }
    }

    pub(crate) fn validate(&self) {
        assert!(self.m_sites > 0, "need at least one site");
        assert!(
            self.objects_per_site > 0,
            "need at least one object per site"
        );
        assert!(self.theta >= 0.0 && self.theta.is_finite());
        let mix = &self.class_mix;
        assert!(
            mix.low_frac >= 0.0 && mix.medium_frac >= 0.0 && mix.high_frac() >= -1e-12,
            "class fractions must be non-negative and sum to at most 1"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        WorkloadConfig::paper_default().validate();
    }

    #[test]
    fn class_fractions_sum_to_one() {
        let mix = ClassMix::paper_default();
        assert!((mix.low_frac + mix.medium_frac + mix.high_frac() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_size_model_floor() {
        let m = SizeModel::constant(1024);
        assert_eq!(m.min_bytes, 1024);
        assert_eq!(m.tail_prob, 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_sites_rejected() {
        let mut c = WorkloadConfig::small();
        c.m_sites = 0;
        c.validate();
    }

    #[test]
    #[should_panic]
    fn overfull_class_mix_rejected() {
        let mut c = WorkloadConfig::small();
        c.class_mix.low_frac = 0.9;
        c.class_mix.medium_frac = 0.9;
        c.validate();
    }
}
