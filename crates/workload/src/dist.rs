//! Hand-rolled continuous distributions on top of `rand`.
//!
//! The approved dependency set does not include `rand_distr`, and the three
//! distributions the workload needs (normal, lognormal, bounded Pareto) are
//! a few lines each, so they live here with their own tests.

use rand::Rng;

/// Standard normal via the Box–Muller transform. Draws two uniforms per
/// sample; the spare is intentionally discarded to keep the sampler
/// stateless (the streams here are not hot enough to care).
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    // Guard against ln(0).
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal distribution N(mu, sigma^2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    pub mu: f64,
    pub sigma: f64,
}

impl Normal {
    /// # Panics
    /// Panics if `sigma` is negative or not finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "invalid sigma {sigma}");
        Self { mu, sigma }
    }

    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        self.mu + self.sigma * standard_normal(rng)
    }
}

/// Normal truncated to `[lo, hi]` by rejection. The paper draws per-server
/// site popularity from N(1/N, 1/4N) "limited to the interval µ ± 3σ";
/// rejection is exact and cheap at that width (>99.7% acceptance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    normal: Normal,
    lo: f64,
    hi: f64,
}

impl TruncatedNormal {
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn new(mu: f64, sigma: f64, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "empty truncation interval [{lo}, {hi}]");
        Self {
            normal: Normal::new(mu, sigma),
            lo,
            hi,
        }
    }

    /// The paper's site-demand distribution: µ = 1/n, σ = 1/(4n), truncated
    /// to µ ± 3σ.
    pub fn paper_site_demand(n_servers: usize) -> Self {
        let mu = 1.0 / n_servers as f64;
        let sigma = 1.0 / (4.0 * n_servers as f64);
        Self::new(mu, sigma, mu - 3.0 * sigma, mu + 3.0 * sigma)
    }

    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        if self.normal.sigma == 0.0 {
            return self.normal.mu.clamp(self.lo, self.hi);
        }
        loop {
            let x = self.normal.sample(rng);
            if x >= self.lo && x <= self.hi {
                return x;
            }
        }
    }
}

/// Lognormal: exp(N(mu, sigma^2)). SURGE models the "body" of web object
/// sizes this way.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Self {
        Self {
            normal: Normal::new(mu, sigma),
        }
    }

    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        self.normal.sample(rng).exp()
    }

    /// Analytical mean `exp(mu + sigma^2 / 2)`.
    pub fn mean(&self) -> f64 {
        (self.normal.mu + self.normal.sigma * self.normal.sigma / 2.0).exp()
    }
}

/// Pareto truncated to `[lo, hi]`, sampled by inverse CDF. SURGE models the
/// tail of web object sizes as Pareto with α ≈ 1.1; we bound it so a single
/// object cannot dwarf a whole site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    pub alpha: f64,
    pub lo: f64,
    pub hi: f64,
}

impl BoundedPareto {
    /// # Panics
    /// Panics unless `0 < lo < hi` and `alpha > 0`.
    pub fn new(alpha: f64, lo: f64, hi: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        assert!(0.0 < lo && lo < hi, "need 0 < lo < hi, got [{lo}, {hi}]");
        Self { alpha, lo, hi }
    }

    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        // Inverse CDF of the bounded Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_of(samples: impl Iterator<Item = f64>) -> (f64, usize) {
        let v: Vec<f64> = samples.collect();
        (v.iter().sum::<f64>() / v.len() as f64, v.len())
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_shift_and_scale() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Normal::new(10.0, 2.0);
        let (mean, _) = mean_of((0..100_000).map(|_| d.sample(&mut rng)));
        assert!((mean - 10.0).abs() < 0.05);
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = TruncatedNormal::new(0.0, 1.0, -0.5, 0.5);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((-0.5..=0.5).contains(&x));
        }
    }

    #[test]
    fn truncated_normal_zero_sigma_returns_mu() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = TruncatedNormal::new(0.3, 0.0, 0.0, 1.0);
        assert_eq!(d.sample(&mut rng), 0.3);
    }

    #[test]
    fn paper_site_demand_matches_spec() {
        let d = TruncatedNormal::paper_site_demand(50);
        let mu = 1.0 / 50.0;
        let sigma = 1.0 / 200.0;
        assert!((d.lo - (mu - 3.0 * sigma)).abs() < 1e-15);
        assert!((d.hi - (mu + 3.0 * sigma)).abs() < 1e-15);
        let mut rng = StdRng::seed_from_u64(5);
        let (mean, _) = mean_of((0..50_000).map(|_| d.sample(&mut rng)));
        assert!((mean - mu).abs() < 0.001);
    }

    #[test]
    fn lognormal_mean_matches_analytic() {
        let mut rng = StdRng::seed_from_u64(6);
        let d = LogNormal::new(2.0, 0.5);
        let (mean, _) = mean_of((0..200_000).map(|_| d.sample(&mut rng)));
        assert!(
            (mean - d.mean()).abs() / d.mean() < 0.02,
            "mean {mean} vs analytic {}",
            d.mean()
        );
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = BoundedPareto::new(1.1, 100.0, 1_000_000.0);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((100.0..=1_000_000.0).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed() {
        // Median should sit near the low bound while the mean is much larger.
        let mut rng = StdRng::seed_from_u64(8);
        let d = BoundedPareto::new(1.1, 100.0, 1e8);
        let mut v: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!(median < 250.0, "median {median}");
        // Theoretical ratio is ~4.4 but the sample mean of an alpha = 1.1
        // tail has huge variance even at n = 100k; 3.5x still cleanly
        // separates heavy tails (an exponential with this median gives ~1.4x).
        assert!(mean > 3.5 * median, "mean {mean}, median {median}");
    }

    #[test]
    #[should_panic]
    fn pareto_invalid_bounds_panic() {
        BoundedPareto::new(1.0, 10.0, 10.0);
    }

    #[test]
    #[should_panic]
    fn truncated_normal_empty_interval_panics() {
        TruncatedNormal::new(0.0, 1.0, 1.0, -1.0);
    }
}
