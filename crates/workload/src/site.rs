//! The site catalog: M hosted web sites, each a set of L objects with
//! SURGE-style sizes and a shared Zipf-like internal popularity.

use crate::config::WorkloadConfig;
use crate::dist::{BoundedPareto, LogNormal};
use crate::zipf::ZipfLike;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Popularity class of a site; determines its total request volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PopularityClass {
    Low,
    Medium,
    High,
}

/// One hosted web site.
#[derive(Debug, Clone)]
pub struct Site {
    /// Index in the catalog (also the site id used everywhere else).
    pub id: u32,
    pub class: PopularityClass,
    /// Per-object sizes in bytes, indexed by popularity rank − 1 (object 0
    /// is the most popular object of the site).
    pub object_sizes: Vec<u64>,
    /// Σ object_sizes — the storage cost of replicating the whole site
    /// (`o_j` in the paper).
    pub total_bytes: u64,
    /// Total requests this site receives across all servers (`Σ_i r_j^(i)`).
    pub total_requests: u64,
}

impl Site {
    /// Mean object size (unweighted).
    pub fn mean_object_bytes(&self) -> f64 {
        self.total_bytes as f64 / self.object_sizes.len() as f64
    }
}

/// The full catalog plus the shared per-site object-popularity law.
#[derive(Debug, Clone)]
pub struct SiteCatalog {
    pub sites: Vec<Site>,
    /// Zipf-like law over object ranks, shared by all sites (the paper uses
    /// the same θ and L for every site).
    pub object_zipf: ZipfLike,
}

impl SiteCatalog {
    /// Generate a catalog from `config` with the given `seed`.
    pub fn generate(config: &WorkloadConfig, seed: u64) -> Self {
        config.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = config.m_sites;

        // Class assignment: exact counts per the mix, then shuffled so class
        // does not correlate with site id (and hence with primary location).
        let n_low = (config.class_mix.low_frac * m as f64).round() as usize;
        let n_med = (config.class_mix.medium_frac * m as f64).round() as usize;
        let n_low = n_low.min(m);
        let n_med = n_med.min(m - n_low);
        let mut classes = Vec::with_capacity(m);
        classes.extend(std::iter::repeat_n(PopularityClass::Low, n_low));
        classes.extend(std::iter::repeat_n(PopularityClass::Medium, n_med));
        classes.extend(std::iter::repeat_n(
            PopularityClass::High,
            m - n_low - n_med,
        ));
        classes.shuffle(&mut rng);

        let body = LogNormal::new(config.size_model.body_mu, config.size_model.body_sigma);
        let tail = BoundedPareto::new(
            config.size_model.tail_alpha,
            config.size_model.tail_lo,
            config.size_model.tail_hi,
        );

        let sites = classes
            .into_iter()
            .enumerate()
            .map(|(id, class)| {
                let object_sizes: Vec<u64> = (0..config.objects_per_site)
                    .map(|_| {
                        let raw = if config.size_model.tail_prob > 0.0
                            && rng.gen_bool(config.size_model.tail_prob)
                        {
                            tail.sample(&mut rng)
                        } else {
                            body.sample(&mut rng)
                        };
                        (raw as u64).max(config.size_model.min_bytes)
                    })
                    .collect();
                let total_bytes = object_sizes.iter().sum();
                let weight = match class {
                    PopularityClass::Low => config.class_mix.low_weight,
                    PopularityClass::Medium => config.class_mix.medium_weight,
                    PopularityClass::High => config.class_mix.high_weight,
                };
                Site {
                    id: id as u32,
                    class,
                    object_sizes,
                    total_bytes,
                    total_requests: (config.base_requests as f64 * weight).round() as u64,
                }
            })
            .collect();

        Self {
            sites,
            object_zipf: ZipfLike::new(config.objects_per_site, config.theta),
        }
    }

    /// Number of sites.
    pub fn m(&self) -> usize {
        self.sites.len()
    }

    /// Cumulative size of all sites (the denominator when server capacity is
    /// expressed as a percentage, as in the paper's figures).
    pub fn total_bytes(&self) -> u64 {
        self.sites.iter().map(|s| s.total_bytes).sum()
    }

    /// Total requests across all sites.
    pub fn total_requests(&self) -> u64 {
        self.sites.iter().map(|s| s.total_requests).sum()
    }

    /// Request-weighted mean object size: `Σ_k pmf(k)·size_k`, averaged over
    /// sites weighted by their request volume. This is the `ō` the paper
    /// divides cache space by to obtain the buffer size `B`.
    pub fn mean_request_bytes(&self) -> f64 {
        let total_req: f64 = self.total_requests() as f64;
        if total_req == 0.0 {
            return 0.0;
        }
        self.sites
            .iter()
            .map(|s| {
                let site_mean = self
                    .object_zipf
                    .expectation(|k| s.object_sizes[k - 1] as f64);
                s.total_requests as f64 * site_mean
            })
            .sum::<f64>()
            / total_req
    }

    /// Count of sites per class, in (low, medium, high) order.
    pub fn class_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for s in &self.sites {
            match s.class {
                PopularityClass::Low => c.0 += 1,
                PopularityClass::Medium => c.1 += 1,
                PopularityClass::High => c.2 += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SizeModel;

    #[test]
    fn paper_default_counts() {
        let cat = SiteCatalog::generate(&WorkloadConfig::paper_default(), 1);
        assert_eq!(cat.m(), 200);
        assert_eq!(cat.class_counts(), (50, 100, 50));
        for s in &cat.sites {
            assert_eq!(s.object_sizes.len(), 1000);
        }
    }

    #[test]
    fn class_weights_drive_request_volume() {
        let cat = SiteCatalog::generate(&WorkloadConfig::small(), 2);
        let low = cat
            .sites
            .iter()
            .find(|s| s.class == PopularityClass::Low)
            .unwrap();
        let high = cat
            .sites
            .iter()
            .find(|s| s.class == PopularityClass::High)
            .unwrap();
        assert_eq!(high.total_requests, 16 * low.total_requests);
    }

    #[test]
    fn sizes_respect_floor() {
        let mut cfg = WorkloadConfig::small();
        cfg.size_model.min_bytes = 5000;
        let cat = SiteCatalog::generate(&cfg, 3);
        for s in &cat.sites {
            assert!(s.object_sizes.iter().all(|&b| b >= 5000));
        }
    }

    #[test]
    fn constant_size_model_is_constant() {
        let mut cfg = WorkloadConfig::small();
        cfg.size_model = SizeModel::constant(4096);
        let cat = SiteCatalog::generate(&cfg, 4);
        for s in &cat.sites {
            assert!(s.object_sizes.iter().all(|&b| b == 4096));
            assert_eq!(s.total_bytes, 4096 * cfg.objects_per_site as u64);
        }
        assert!((cat.mean_request_bytes() - 4096.0).abs() < 1e-6);
    }

    #[test]
    fn total_bytes_is_sum_of_sites() {
        let cat = SiteCatalog::generate(&WorkloadConfig::small(), 5);
        let sum: u64 = cat.sites.iter().map(|s| s.total_bytes).sum();
        assert_eq!(cat.total_bytes(), sum);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = WorkloadConfig::small();
        let a = SiteCatalog::generate(&cfg, 9);
        let b = SiteCatalog::generate(&cfg, 9);
        for (sa, sb) in a.sites.iter().zip(&b.sites) {
            assert_eq!(sa.object_sizes, sb.object_sizes);
            assert_eq!(sa.class, sb.class);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = WorkloadConfig::small();
        let a = SiteCatalog::generate(&cfg, 1);
        let b = SiteCatalog::generate(&cfg, 2);
        assert_ne!(a.sites[0].object_sizes, b.sites[0].object_sizes);
    }

    #[test]
    fn mean_request_bytes_weighted_toward_popular_objects() {
        // Make object sizes increase with rank: the request-weighted mean
        // must fall below the unweighted mean because Zipf favours low ranks.
        let mut cfg = WorkloadConfig::small();
        cfg.size_model = SizeModel::constant(1000);
        let mut cat = SiteCatalog::generate(&cfg, 6);
        for s in &mut cat.sites {
            for (k, b) in s.object_sizes.iter_mut().enumerate() {
                *b = 1000 + 100 * k as u64;
            }
            s.total_bytes = s.object_sizes.iter().sum();
        }
        let unweighted: f64 = cat.sites[0]
            .object_sizes
            .iter()
            .map(|&b| b as f64)
            .sum::<f64>()
            / cfg.objects_per_site as f64;
        assert!(cat.mean_request_bytes() < unweighted);
    }
}
