//! Synthetic web workload substrate for the hybrid CDN reproduction.
//!
//! The paper generates "a separate synthetic workload for each of the 200
//! web sites" with the SURGE model (Barford & Crovella): Zipf-like object
//! popularity inside each site, heavy-tailed object sizes, and per-server
//! site demand drawn from a truncated normal. SURGE itself is not available,
//! so this crate reproduces the marginals the evaluation depends on:
//!
//! * [`dist`] — normal / truncated-normal / lognormal / bounded-Pareto
//!   samplers built directly on `rand` (no external distribution crate).
//! * [`zipf`] — the Zipf-like law `P(rank k) = α / k^θ` with exact
//!   normalisation, inverse-CDF sampling, and prefix-mass queries (the
//!   analytical LRU model needs `p_B`, the mass of the top-B objects).
//! * [`site`] — the site catalog: M sites, L objects each, SURGE-style
//!   object sizes, popularity classes (low/medium/high).
//! * [`demand`] — the N×M demand matrix `r_j^(i)` (requests from the client
//!   population of server i for site j).
//! * [`trace`] — deterministic per-server request streams (site via the
//!   demand row, object via the site-internal Zipf, λ-flagged requests).
//! * [`stream`] — the chunked streaming adapter that bounds how many
//!   requests are resident in memory at once (large-tier runs).
//! * [`trace_file`] — the binary `.events` trace format (real-trace
//!   ingestion and replay).
//!
//! Everything is seeded and deterministic.

pub mod analysis;
pub mod config;
pub mod demand;
pub mod dist;
pub mod site;
pub mod stream;
pub mod temporal;
pub mod trace;
pub mod trace_file;
pub mod zipf;

pub use analysis::TraceStats;
pub use config::WorkloadConfig;
pub use demand::DemandMatrix;
pub use site::{PopularityClass, Site, SiteCatalog};
pub use stream::ChunkedStream;
pub use temporal::{DriftConfig, Drifted};
pub use trace::{Flavor, LambdaMode, Request, ServerStream, TraceSpec};
pub use trace_file::{
    decode_events, encode_events, open_events_file, pack_key, read_events_file, unpack_key,
    write_events_file, EventsReader, TraceEvent, TraceFileError,
};
pub use zipf::ZipfLike;
