//! The Zipf-like popularity law `P(rank k) = α / k^θ`.
//!
//! Both the workload generator (drawing objects inside a site) and the
//! analytical LRU model (which needs the pmf, the normalisation constant α,
//! and prefix masses) consume this type, so it precomputes the full CDF once
//! and shares it.

use rand::Rng;
use std::sync::Arc;

/// A Zipf-like distribution over ranks `1..=n`.
///
/// ```
/// use cdn_workload::ZipfLike;
/// let z = ZipfLike::new(100, 1.0);
/// assert!(z.pmf(1) > z.pmf(2));                  // rank 1 is hottest
/// assert!((z.prefix_mass(100) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfLike {
    n: usize,
    theta: f64,
    /// Normalisation constant α = 1 / Σ_{k=1..n} k^{-θ}.
    alpha: f64,
    /// cdf[k-1] = P(rank <= k); cdf[n-1] == 1 (up to rounding, forced).
    cdf: Arc<[f64]>,
    /// pmf[k-1] = P(rank == k), precomputed — the hit-ratio model iterates
    /// the full pmf millions of times and must not pay a powf per rank.
    pmf: Arc<[f64]>,
}

impl ZipfLike {
    /// Build the distribution. `O(n)` time and space.
    ///
    /// # Panics
    /// Panics if `n == 0`, or if `theta` is negative or not finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(theta >= 0.0 && theta.is_finite(), "invalid theta {theta}");
        let mut cdf = Vec::with_capacity(n);
        let mut pmf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            let w = (k as f64).powf(-theta);
            pmf.push(w);
            acc += w;
            cdf.push(acc);
        }
        let total = acc;
        let alpha = 1.0 / total;
        for v in &mut cdf {
            *v /= total;
        }
        for v in &mut pmf {
            *v /= total;
        }
        // Guarantee the last entry is exactly 1 so sampling never falls off.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Self {
            n,
            theta,
            alpha,
            cdf: cdf.into(),
            pmf: pmf.into(),
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The exponent θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Normalisation constant α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Probability of rank `k` (1-based).
    ///
    /// # Panics
    /// Panics if `k` is 0 or exceeds `n`.
    pub fn pmf(&self, k: usize) -> f64 {
        assert!((1..=self.n).contains(&k), "rank {k} out of 1..={}", self.n);
        self.pmf[k - 1]
    }

    /// The full pmf as a slice, `pmf_slice()[k-1] == pmf(k)` — for hot loops
    /// that iterate every rank.
    pub fn pmf_slice(&self) -> &[f64] {
        &self.pmf
    }

    /// Cumulative mass of the top `k` ranks, `P(rank <= k)`. `k = 0` gives 0;
    /// `k >= n` gives 1.
    pub fn prefix_mass(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.cdf[k.min(self.n) - 1]
        }
    }

    /// Draw a rank (1-based) by inverse-CDF binary search. `O(log n)`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the count of entries < u, i.e. the 0-based
        // index of the first cdf entry >= u; rank is that + 1.
        self.cdf.partition_point(|&c| c < u) + 1
    }

    /// Expected value of `f(k)` weighted by the pmf — a convenience for the
    /// request-weighted mean object size.
    pub fn expectation(&self, mut f: impl FnMut(usize) -> f64) -> f64 {
        (1..=self.n).map(|k| self.pmf(k) * f(k)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        for theta in [0.0, 0.6, 1.0, 1.4] {
            let z = ZipfLike::new(500, theta);
            let sum: f64 = (1..=500).map(|k| z.pmf(k)).sum();
            assert!((sum - 1.0).abs() < 1e-12, "theta {theta}: sum {sum}");
        }
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = ZipfLike::new(10, 0.0);
        for k in 1..=10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_is_decreasing_in_rank() {
        let z = ZipfLike::new(100, 0.8);
        for k in 1..100 {
            assert!(z.pmf(k) > z.pmf(k + 1));
        }
    }

    #[test]
    fn prefix_mass_boundaries() {
        let z = ZipfLike::new(50, 1.0);
        assert_eq!(z.prefix_mass(0), 0.0);
        assert_eq!(z.prefix_mass(50), 1.0);
        assert_eq!(z.prefix_mass(999), 1.0);
        assert!((z.prefix_mass(1) - z.pmf(1)).abs() < 1e-12);
    }

    #[test]
    fn prefix_mass_monotone() {
        let z = ZipfLike::new(200, 1.0);
        for k in 0..200 {
            assert!(z.prefix_mass(k) <= z.prefix_mass(k + 1) + 1e-15);
        }
    }

    #[test]
    fn single_rank_always_samples_one() {
        let z = ZipfLike::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
        assert_eq!(z.pmf(1), 1.0);
    }

    #[test]
    fn sampling_matches_pmf() {
        let z = ZipfLike::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let n_samples = 400_000usize;
        let mut counts = [0usize; 21];
        for _ in 0..n_samples {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate().skip(1) {
            let empirical = count as f64 / n_samples as f64;
            let expected = z.pmf(k);
            assert!(
                (empirical - expected).abs() < 0.004,
                "rank {k}: {empirical} vs {expected}"
            );
        }
    }

    #[test]
    fn higher_theta_concentrates_mass() {
        let low = ZipfLike::new(1000, 0.6);
        let high = ZipfLike::new(1000, 1.2);
        assert!(high.prefix_mass(10) > low.prefix_mass(10));
    }

    #[test]
    fn expectation_of_constant_is_constant() {
        let z = ZipfLike::new(37, 0.9);
        assert!((z.expectation(|_| 3.5) - 3.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_ranks_panics() {
        ZipfLike::new(0, 1.0);
    }

    #[test]
    #[should_panic]
    fn pmf_rank_zero_panics() {
        ZipfLike::new(5, 1.0).pmf(0);
    }
}
