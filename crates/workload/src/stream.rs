//! Chunked streaming adapter: bound the number of requests resident in
//! memory while preserving the exact request sequence.
//!
//! The engine consumes request iterators lazily, but callers that buffer for
//! throughput (or, later, read traces from files) need a hard guarantee that
//! no more than one chunk of requests is ever materialised. `ChunkedStream`
//! wraps any request iterator, refills a fixed-size buffer chunk by chunk,
//! and records the peak number of buffered items so tests can assert the
//! ceiling was honoured.

use std::collections::VecDeque;

/// Iterator adapter that pulls from the inner iterator in fixed-size chunks.
///
/// Yields exactly the same sequence as the inner iterator; at most
/// `chunk_size` items are buffered at any moment. `peak_resident()` reports
/// the largest buffer the adapter ever held.
#[derive(Debug, Clone)]
pub struct ChunkedStream<I: Iterator> {
    inner: I,
    buf: VecDeque<I::Item>,
    chunk_size: usize,
    peak_resident: usize,
    exhausted: bool,
}

impl<I: Iterator> ChunkedStream<I> {
    /// Wrap `inner`, buffering at most `chunk_size` items at a time.
    ///
    /// # Panics
    /// Panics if `chunk_size` is zero.
    pub fn new(inner: I, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be at least 1");
        Self {
            inner,
            buf: VecDeque::with_capacity(chunk_size.min(1 << 16)),
            chunk_size,
            peak_resident: 0,
            exhausted: false,
        }
    }

    /// Largest number of items ever resident in the buffer. Never exceeds
    /// the configured chunk size.
    pub fn peak_resident(&self) -> usize {
        self.peak_resident
    }

    /// The configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    fn refill(&mut self) {
        while self.buf.len() < self.chunk_size {
            match self.inner.next() {
                Some(item) => self.buf.push_back(item),
                None => {
                    self.exhausted = true;
                    break;
                }
            }
        }
        self.peak_resident = self.peak_resident.max(self.buf.len());
    }
}

impl<I: Iterator> Iterator for ChunkedStream<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        if self.buf.is_empty() && !self.exhausted {
            self.refill();
        }
        self.buf.pop_front()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let buffered = self.buf.len();
        let (lo, hi) = self.inner.size_hint();
        (lo + buffered, hi.map(|h| h + buffered))
    }
}

impl<I: ExactSizeIterator> ExactSizeIterator for ChunkedStream<I> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadConfig;
    use crate::demand::DemandMatrix;
    use crate::site::SiteCatalog;
    use crate::trace::{LambdaMode, Request, TraceSpec};

    fn spec() -> TraceSpec {
        let cat = SiteCatalog::generate(&WorkloadConfig::small(), 3);
        let demand = DemandMatrix::generate(&cat, 4, 4);
        TraceSpec::new(
            &demand,
            cat.object_zipf.clone(),
            0.1,
            LambdaMode::Uncacheable,
            11,
        )
    }

    #[test]
    fn yields_identical_sequence() {
        let s = spec();
        let flat: Vec<Request> = s.stream_for_server(0).collect();
        let chunked: Vec<Request> = ChunkedStream::new(s.stream_for_server(0), 64).collect();
        assert_eq!(flat, chunked);
    }

    #[test]
    fn peak_resident_never_exceeds_chunk_size() {
        let s = spec();
        let mut c = ChunkedStream::new(s.stream_for_server(1), 37);
        let mut n = 0u64;
        for _ in c.by_ref() {
            n += 1;
        }
        assert_eq!(n, s.len_for_server(1));
        assert!(c.peak_resident() <= 37, "peak {}", c.peak_resident());
        assert!(c.peak_resident() > 0);
    }

    #[test]
    fn exact_size_iterator_contract() {
        let s = spec();
        let mut c = ChunkedStream::new(s.stream_for_server(2), 16);
        let total = c.len();
        assert_eq!(total as u64, s.len_for_server(2));
        c.next();
        assert_eq!(c.len(), total - 1);
        // Mid-chunk the hint must still be exact.
        for _ in 0..10 {
            c.next();
        }
        assert_eq!(c.len(), total - 11);
    }

    #[test]
    fn empty_inner_iterator() {
        let mut c = ChunkedStream::new(std::iter::empty::<Request>(), 8);
        assert_eq!(c.next(), None);
        assert_eq!(c.peak_resident(), 0);
    }

    #[test]
    fn chunk_larger_than_stream() {
        let items: Vec<u32> = (0..5).collect();
        let c = ChunkedStream::new(items.clone().into_iter(), 1000);
        let out: Vec<u32> = c.collect();
        assert_eq!(out, items);
    }

    #[test]
    #[should_panic]
    fn zero_chunk_size_panics() {
        ChunkedStream::new(std::iter::empty::<u32>(), 0);
    }
}
