//! The N×M demand matrix `r_j^(i)`: requests initiated by the client
//! population behind server `i` for site `j` over the measurement period.
//!
//! The paper draws the popularity of each site at each server from a
//! truncated normal N(1/N, 1/4N) on µ ± 3σ, then the per-server shares are
//! normalised so each site's total request volume matches its popularity
//! class.

use crate::dist::TruncatedNormal;
use crate::site::SiteCatalog;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Row-major `r[i][j]` demand matrix with cached totals.
#[derive(Debug, Clone)]
pub struct DemandMatrix {
    n_servers: usize,
    m_sites: usize,
    /// `r[i * m + j]` = requests from server i's clients for site j.
    r: Vec<u64>,
    /// Σ_j r[i][j] per server.
    server_totals: Vec<u64>,
    /// Σ_i r[i][j] per site.
    site_totals: Vec<u64>,
}

impl DemandMatrix {
    /// Generate the paper's demand model for `n_servers` over `catalog`.
    pub fn generate(catalog: &SiteCatalog, n_servers: usize, seed: u64) -> Self {
        assert!(n_servers > 0, "need at least one server");
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = TruncatedNormal::paper_site_demand(n_servers);
        let m = catalog.m();
        let mut r = vec![0u64; n_servers * m];

        for (j, site) in catalog.sites.iter().enumerate() {
            // Per-server shares, renormalised to sum to 1.
            let mut shares: Vec<f64> = (0..n_servers).map(|_| dist.sample(&mut rng)).collect();
            let total: f64 = shares.iter().sum();
            for s in &mut shares {
                *s /= total;
            }
            // Largest-remainder rounding so the integer row sums exactly to
            // the site's request volume.
            let target = site.total_requests;
            let mut floors: Vec<u64> = shares
                .iter()
                .map(|&s| (s * target as f64).floor() as u64)
                .collect();
            let mut remainder = target - floors.iter().sum::<u64>();
            let mut order: Vec<usize> = (0..n_servers).collect();
            order.sort_by(|&a, &b| {
                let fa = shares[a] * target as f64 - floors[a] as f64;
                let fb = shares[b] * target as f64 - floors[b] as f64;
                fb.partial_cmp(&fa).unwrap()
            });
            let mut idx = 0;
            while remainder > 0 {
                floors[order[idx % n_servers]] += 1;
                remainder -= 1;
                idx += 1;
            }
            for (i, &count) in floors.iter().enumerate() {
                r[i * m + j] = count;
            }
        }

        let server_totals: Vec<u64> = (0..n_servers)
            .map(|i| r[i * m..(i + 1) * m].iter().sum())
            .collect();
        let site_totals: Vec<u64> = (0..m)
            .map(|j| (0..n_servers).map(|i| r[i * m + j]).sum())
            .collect();

        Self {
            n_servers,
            m_sites: m,
            r,
            server_totals,
            site_totals,
        }
    }

    /// Build directly from an explicit matrix (tests, custom scenarios).
    ///
    /// # Panics
    /// Panics if `r.len() != n_servers * m_sites`.
    pub fn from_raw(n_servers: usize, m_sites: usize, r: Vec<u64>) -> Self {
        assert_eq!(r.len(), n_servers * m_sites, "matrix shape mismatch");
        let server_totals = (0..n_servers)
            .map(|i| r[i * m_sites..(i + 1) * m_sites].iter().sum())
            .collect();
        let site_totals = (0..m_sites)
            .map(|j| (0..n_servers).map(|i| r[i * m_sites + j]).sum())
            .collect();
        Self {
            n_servers,
            m_sites,
            r,
            server_totals,
            site_totals,
        }
    }

    pub fn n_servers(&self) -> usize {
        self.n_servers
    }

    pub fn m_sites(&self) -> usize {
        self.m_sites
    }

    /// `r_j^(i)` — requests from server `i` for site `j`.
    #[inline]
    pub fn requests(&self, server: usize, site: usize) -> u64 {
        self.r[server * self.m_sites + site]
    }

    /// Full demand row of a server.
    pub fn server_row(&self, server: usize) -> &[u64] {
        &self.r[server * self.m_sites..(server + 1) * self.m_sites]
    }

    /// Σ_j r_j^(i).
    pub fn server_total(&self, server: usize) -> u64 {
        self.server_totals[server]
    }

    /// Σ_i r_j^(i).
    pub fn site_total(&self, site: usize) -> u64 {
        self.site_totals[site]
    }

    /// Grand total of requests.
    pub fn grand_total(&self) -> u64 {
        self.server_totals.iter().sum()
    }

    /// Popularity `p_j^(i) = r_j^(i) / Σ_k r_k^(i)` of site `j` at server
    /// `i` — the quantity the LRU model takes as input.
    pub fn site_popularity(&self, server: usize, site: usize) -> f64 {
        let total = self.server_totals[server];
        if total == 0 {
            0.0
        } else {
            self.requests(server, site) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadConfig;

    fn demand() -> (SiteCatalog, DemandMatrix) {
        let cat = SiteCatalog::generate(&WorkloadConfig::small(), 7);
        let d = DemandMatrix::generate(&cat, 6, 8);
        (cat, d)
    }

    #[test]
    fn site_totals_match_catalog() {
        let (cat, d) = demand();
        for (j, site) in cat.sites.iter().enumerate() {
            assert_eq!(d.site_total(j), site.total_requests, "site {j}");
        }
    }

    #[test]
    fn grand_total_matches_catalog() {
        let (cat, d) = demand();
        assert_eq!(d.grand_total(), cat.total_requests());
    }

    #[test]
    fn shares_are_roughly_uniform() {
        // With µ = 1/N and σ = 1/(4N) truncated at 3σ, each server's share
        // of a site must lie within [µ−3σ, µ+3σ]/normalisation ≈ ±75% of µ.
        let (cat, d) = demand();
        let n = d.n_servers() as f64;
        for j in 0..d.m_sites() {
            let total = cat.sites[j].total_requests as f64;
            for i in 0..d.n_servers() {
                let share = d.requests(i, j) as f64 / total;
                assert!(share > 0.0, "server {i} site {j} got zero demand");
                assert!(share < 2.5 / n, "share {share} too concentrated");
            }
        }
    }

    #[test]
    fn popularity_rows_sum_to_one() {
        let (_, d) = demand();
        for i in 0..d.n_servers() {
            let sum: f64 = (0..d.m_sites()).map(|j| d.site_popularity(i, j)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "server {i}: {sum}");
        }
    }

    #[test]
    fn from_raw_round_trips() {
        let d = DemandMatrix::from_raw(2, 3, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(d.requests(0, 2), 3);
        assert_eq!(d.requests(1, 0), 4);
        assert_eq!(d.server_total(0), 6);
        assert_eq!(d.server_total(1), 15);
        assert_eq!(d.site_total(1), 7);
        assert_eq!(d.server_row(1), &[4, 5, 6]);
    }

    #[test]
    fn zero_demand_server_has_zero_popularity() {
        let d = DemandMatrix::from_raw(2, 2, vec![0, 0, 3, 1]);
        assert_eq!(d.site_popularity(0, 0), 0.0);
        assert!((d.site_popularity(1, 0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cat = SiteCatalog::generate(&WorkloadConfig::small(), 1);
        let a = DemandMatrix::generate(&cat, 4, 5);
        let b = DemandMatrix::generate(&cat, 4, 5);
        for i in 0..4 {
            assert_eq!(a.server_row(i), b.server_row(i));
        }
    }

    #[test]
    #[should_panic]
    fn from_raw_shape_mismatch_panics() {
        DemandMatrix::from_raw(2, 2, vec![1, 2, 3]);
    }
}
