//! Closed-form LRU hit ratio under generalized power-law demand
//! (Laoutaris-style), the third interchangeable model backend.
//!
//! The paper's Eq. (1)/(2) and Che's approximation both pay a per-query sum
//! over a site's L objects (amortised by tables/memos, but still the
//! planner's hot path at internet scale). This backend instead answers in
//! O(1) arithmetic from a characteristic-rank argument:
//!
//! Merge every site's internal Zipf(θ) law into one server-wide power law —
//! object rank `r` of a site with popularity `w` is requested with
//! probability `w·α·r^{−θ}`. Che's residency of such an object is
//! `1 − e^{−(r*/r)^θ}` with a per-site characteristic rank
//! `r*_j = (w_j·α·T)^{1/θ} = w_j^{1/θ}·τ` — one shared scalar `τ` carries
//! the whole characteristic time. Two pieces make it fast:
//!
//! * **Occupancy.** In the continuum a site's buffer share is exactly
//!   separable, `O(r*) = ∫_0^L (1 − e^{−(r*/r)^θ}) dr = r*·I_θ(L/r*)`,
//!   where `I_θ` is a universal one-dimensional function tabulated once per
//!   model on a log grid. The buffer constraint `Σ_j O(w_j^{1/θ}·τ) = B`
//!   pins `τ` by a fixed-count bisection — one O(M·64) scalar solve per
//!   `(server, buffer)` (memoised by the oracle). Note the naive step-only
//!   split `Σ r*_j = B` is *not* good enough: the partially resident tail
//!   holds a large share of the buffer (most of it as θ → 1⁻ with large L),
//!   and ignoring it inflates `τ` by multiples.
//! * **Hit ratio.** Given `r*`, the top few ranks are summed discretely
//!   with the exact residency (they carry most of the mass); every deeper
//!   rank uses the continuum `min(1, (r*/r)^θ)` (step core + linear tail)
//!   minus its separable excess over that rank window:
//!
//!   ```text
//!   h(p | r*) ≈ Σ_{r ≤ F} pmf(r)·(1 − e^{−(r*/r)^θ})
//!             + α·∫_{F+½}^{L} r^{−θ}·min(1, (r*/r)^θ) dr
//!             − (α·r*^{1−θ}/θ)·(G(u_lo) − G(u_hi))
//!   ```
//!
//!   with `G` a second universal tabulated function (see
//!   [`build_excess_table`]) — O(1) arithmetic per query, no per-object
//!   series.
//!
//! Accuracy versus Eq. (1)/(2) is bounded by the differential suite and
//! measured in `ablation_model`.

use cdn_workload::ZipfLike;

/// Smallest θ the rank algebra runs at: the excess integral
/// [`build_excess_table`] needs θ > 1/3 to converge at its lower end, and
/// `w^{1/θ}` degenerates as θ → 0 (uniform demand) anyway. The repo's
/// workloads use θ ∈ [0.6, 1.2].
const MIN_THETA: f64 = 0.35;

/// Leading ranks evaluated discretely with the exact Che residency in
/// [`ClosedFormLru::site_hit_ratio_at`]. Under Zipf skew they carry most of
/// a site's mass, and the continuum approximation is at its worst there
/// (rank 1 alone can hold ~20% of the mass that an integral from 1 halves).
const TOP_RANKS: usize = 8;

/// The step core + linear tail bound the exact Che residency
/// `1 − e^{−u}`, `u = (r*/r)^θ`, from above. Substituting `r = r*·u^{−1/θ}`
/// into `Σ pmf·(approx − exact)` makes the excess mass over any rank window
/// separable:
///
/// ```text
/// excess(r_lo..r_hi) = (α·r*^{1−θ}/θ) · (G(u(r_hi)) − G(u(r_lo)))
/// G(u) = ∫_u^∞ (min(1, t) − 1 + e^{−t}) · t^{−1/θ} dt
/// ```
///
/// `G` is a universal decreasing function of `u`, tabulated once per model
/// on a log grid — the truncation matters: near saturation (`r* → L`) only
/// a sliver of the window remains and an untruncated correction would
/// overshoot several-fold.
const EXC_NODES: usize = 1024;
const EXC_LN_MIN: f64 = -30.0;
const EXC_LN_MAX: f64 = 4.0; // g(e^4) ≈ e^{−55}: zero beyond

fn build_excess_table(theta: f64) -> Vec<f64> {
    let g = |t: f64| t.min(1.0) - 1.0 + (-t).exp();
    let integrand = |t: f64| g(t) * t.powf(-1.0 / theta);
    let ln_step = (EXC_LN_MAX - EXC_LN_MIN) / (EXC_NODES - 1) as f64;
    let mut values = vec![0.0; EXC_NODES];
    const SUB: usize = 8;
    // Accumulate from the top down: values[i] = ∫_{u_i}^{u_max}.
    for i in (0..EXC_NODES - 1).rev() {
        let (a, b) = (
            (EXC_LN_MIN + i as f64 * ln_step).exp(),
            (EXC_LN_MIN + (i + 1) as f64 * ln_step).exp(),
        );
        let h = (b - a) / SUB as f64;
        let mut acc = values[i + 1];
        for s in 0..SUB {
            let (lo, hi) = (a + s as f64 * h, a + (s + 1) as f64 * h);
            acc += 0.5 * h * (integrand(lo) + integrand(hi));
        }
        values[i] = acc;
    }
    values
}

/// Log-grid tabulation of the universal occupancy integral
/// `I_θ(x) = ∫_0^x (1 − e^{−v^{−θ}}) dv` — a site with characteristic rank
/// `r*` occupies `r*·I_θ(L/r*)` buffer slots in the continuum. Strictly
/// increasing in `x`; `I_θ(x) ≈ x` for `x ≤ 1` (everything resident) and
/// grows like `x^{1−θ}/(1−θ)` (θ < 1), `ln x` (θ = 1) or saturates
/// (θ > 1) beyond.
const OCC_NODES: usize = 2048;
const OCC_LN_MAX: f64 = 36.0; // grid covers x ∈ [1, e^36 ≈ 4e15]

fn build_occupancy_table(theta: f64) -> Vec<f64> {
    let integrand = |v: f64| 1.0 - (-v.powf(-theta)).exp();
    // Base: I(1) by Simpson (integrand is smooth and ≤ 1 on (0, 1]; it
    // tends to 1 at v → 0).
    let n0 = 2000usize;
    let h0 = 1.0 / n0 as f64;
    let mut base = 1.0 + integrand(1.0); // v→0 limit is 1
    for k in 1..n0 {
        let w = if k % 2 == 1 { 4.0 } else { 2.0 };
        base += w * integrand(k as f64 * h0);
    }
    base *= h0 / 3.0;
    // Accumulate along the log grid with sub-stepped trapezoids.
    let ln_step = OCC_LN_MAX / (OCC_NODES - 1) as f64;
    let mut values = Vec::with_capacity(OCC_NODES);
    values.push(base);
    let mut acc = base;
    const SUB: usize = 8;
    for i in 1..OCC_NODES {
        let (a, b) = (((i - 1) as f64 * ln_step).exp(), (i as f64 * ln_step).exp());
        let h = (b - a) / SUB as f64;
        for s in 0..SUB {
            let (lo, hi) = (a + s as f64 * h, a + (s + 1) as f64 * h);
            acc += 0.5 * h * (integrand(lo) + integrand(hi));
        }
        values.push(acc);
    }
    values
}

/// Per-server demand geometry the closed form needs: each site's
/// `w^{1/θ}` (descending, for a deterministic summation order in the
/// `τ` bisection) and their total.
#[derive(Debug, Clone)]
pub struct DemandScale {
    /// `w_j^{1/θ}`, sorted descending.
    pows: Vec<f64>,
    /// `S = Σ_j w_j^{1/θ}`.
    total: f64,
}

impl DemandScale {
    /// Total scale `S = Σ_j w_j^{1/θ}`.
    pub fn total(&self) -> f64 {
        self.total
    }
}

/// The closed-form model for one object law (`L` objects per site,
/// exponent θ).
#[derive(Debug, Clone)]
pub struct ClosedFormLru {
    zipf: ZipfLike,
    /// `G` on its log grid — see [`build_excess_table`].
    excess_table: Vec<f64>,
    /// `I_θ` on its log grid — see [`build_occupancy_table`].
    occupancy_table: Vec<f64>,
}

impl ClosedFormLru {
    pub fn new(objects_per_site: usize, theta: f64) -> Self {
        Self::from_zipf(ZipfLike::new(objects_per_site, theta))
    }

    pub fn from_zipf(zipf: ZipfLike) -> Self {
        let theta = zipf.theta().max(MIN_THETA);
        Self {
            excess_table: build_excess_table(theta),
            occupancy_table: build_occupancy_table(theta),
            zipf,
        }
    }

    /// The shared per-site object law.
    pub fn zipf(&self) -> &ZipfLike {
        &self.zipf
    }

    fn theta(&self) -> f64 {
        self.zipf.theta().max(MIN_THETA)
    }

    /// Precompute the demand geometry of a server from its site
    /// popularities (zero/negative weights are dropped).
    pub fn demand_scale(&self, site_pops: &[f64]) -> DemandScale {
        let inv_theta = 1.0 / self.theta();
        let mut pows: Vec<f64> = site_pops
            .iter()
            .filter(|&&w| w > 0.0)
            .map(|&w| w.powf(inv_theta))
            .collect();
        pows.sort_unstable_by(|a, b| b.partial_cmp(a).expect("finite weights"));
        let total = pows.iter().sum();
        DemandScale { pows, total }
    }

    /// Interpolated `I_θ(x)` (see [`build_occupancy_table`]).
    fn occupancy_integral(&self, x: f64) -> f64 {
        if x <= 1.0 {
            // Fully resident regime: the integrand is ≈ 1, and this branch
            // is only reached for sites about to be capped at L anyway.
            return self.occupancy_table[0] * x;
        }
        let ln_step = OCC_LN_MAX / (OCC_NODES - 1) as f64;
        let pos = x.ln() / ln_step;
        let i = pos as usize;
        if i + 1 >= OCC_NODES {
            // Beyond the grid: extend with the tail asymptotics
            // (1 − e^{−v^{−θ}} ≈ v^{−θ}).
            let theta = self.theta();
            let x_max = OCC_LN_MAX.exp();
            let last = self.occupancy_table[OCC_NODES - 1];
            return if (theta - 1.0).abs() < 1e-9 {
                last + (x / x_max).ln()
            } else {
                last + (x.powf(1.0 - theta) - x_max.powf(1.0 - theta)) / (1.0 - theta)
            };
        }
        let frac = pos - i as f64;
        self.occupancy_table[i] * (1.0 - frac) + self.occupancy_table[i + 1] * frac
    }

    /// Interpolated `G(u)` (see [`build_excess_table`]).
    fn excess_integral(&self, u: f64) -> f64 {
        if u <= 0.0 {
            return self.excess_table[0];
        }
        let ln_step = (EXC_LN_MAX - EXC_LN_MIN) / (EXC_NODES - 1) as f64;
        let pos = (u.ln() - EXC_LN_MIN) / ln_step;
        if pos <= 0.0 {
            return self.excess_table[0];
        }
        let i = pos as usize;
        if i + 1 >= EXC_NODES {
            return 0.0;
        }
        let frac = pos - i as f64;
        self.excess_table[i] * (1.0 - frac) + self.excess_table[i + 1] * frac
    }

    /// Continuum buffer occupancy of one site with characteristic rank
    /// `r*`: `∫_0^L (1 − e^{−(r*/r)^θ}) dr = r*·I_θ(L/r*)`. Strictly
    /// increasing in `r*`, saturating at `L`.
    fn occupancy(&self, r_star: f64) -> f64 {
        let lf = self.zipf.n() as f64;
        if r_star <= 0.0 {
            return 0.0;
        }
        (r_star * self.occupancy_integral(lf / r_star)).min(lf)
    }

    /// The shared characteristic scale `τ` (so that `r*_j = w_j^{1/θ}·τ`)
    /// at buffer size `b`: the root of `Σ_j occupancy(w_j^{1/θ}·τ) = b`,
    /// found by a fixed-count bisection (deterministic for any thread
    /// schedule). Returns `+∞` when the buffer covers every object.
    pub fn characteristic_scale(&self, b: usize, scale: &DemandScale) -> f64 {
        if b == 0 || scale.pows.is_empty() || scale.total <= 0.0 {
            return 0.0;
        }
        let lf = self.zipf.n() as f64;
        let target = b as f64;
        if target >= lf * scale.pows.len() as f64 {
            return f64::INFINITY;
        }
        let occ_total =
            |tau: f64| -> f64 { scale.pows.iter().map(|&w| self.occupancy(w * tau)).sum() };
        let mut hi = target / scale.total;
        let mut grow = 0;
        while occ_total(hi) < target && grow < 200 {
            hi *= 2.0;
            grow += 1;
        }
        let mut lo = 0.0f64;
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if occ_total(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Characteristic rank of a site with popularity `p` when the server's
    /// buffer holds `b` objects: how many of the site's top ranks stay
    /// (fully) resident.
    pub fn characteristic_rank(&self, p: f64, b: usize, scale: &DemandScale) -> f64 {
        if p <= 0.0 {
            return 0.0;
        }
        let tau = self.characteristic_scale(b, scale);
        let lf = self.zipf.n() as f64;
        if tau.is_infinite() {
            return lf;
        }
        (p.powf(1.0 / self.theta()) * tau).min(lf)
    }

    /// Closed-form site hit ratio at buffer size `b` (solves for `τ` each
    /// call; batch callers should solve once via [`Self::characteristic_scale`]
    /// and use [`Self::site_hit_ratio_at`]).
    pub fn site_hit_ratio(&self, p: f64, b: usize, scale: &DemandScale) -> f64 {
        self.site_hit_ratio_at(p, self.characteristic_scale(b, scale))
    }

    /// Closed-form site hit ratio given a precomputed characteristic scale
    /// `τ`: exact Che residency on the top [`TOP_RANKS`] ranks (they carry
    /// most of the mass and the continuum is worst there), then the
    /// step-core + linear-tail continuum with the tabulated excess
    /// correction for every deeper rank. O(1) arithmetic per query.
    pub fn site_hit_ratio_at(&self, p: f64, tau: f64) -> f64 {
        if p <= 0.0 || tau <= 0.0 {
            return 0.0;
        }
        let l = self.zipf.n();
        let theta = self.theta();
        let alpha = self.zipf.alpha();
        let lf = l as f64;
        let r_star = if tau.is_infinite() {
            lf
        } else {
            (p.powf(1.0 / theta) * tau).min(lf)
        };
        if r_star >= lf {
            return 1.0;
        }
        // Top ranks, discretely: pmf(r) · (1 − e^{−(r*/r)^θ}).
        let top = TOP_RANKS.min(l);
        let mut h: f64 = (1..=top)
            .map(|r| self.zipf.pmf(r) * (1.0 - (-(r_star / r as f64).powf(theta)).exp()))
            .sum();
        // Continuum region r ∈ [F + ½, L] (midpoint rule at the junction).
        let from = top as f64 + 0.5;
        if lf > from {
            // Step core over fully resident continuum ranks…
            if r_star > from {
                let core = if (theta - 1.0).abs() < 1e-9 {
                    (r_star / from).ln()
                } else {
                    (r_star.powf(1.0 - theta) - from.powf(1.0 - theta)) / (1.0 - theta)
                };
                h += alpha * core;
            }
            // …linear tail beyond: Σ_{r > r*} α·r^{−θ}·(r*/r)^θ
            //   = α·r*^θ · ∫ r^{−2θ} dr, closed form per 2θ ≷ 1.
            let tail_from = r_star.max(from);
            let two_theta = 2.0 * theta;
            let integral = if (two_theta - 1.0).abs() < 1e-9 {
                (lf / tail_from).ln()
            } else {
                (tail_from.powf(1.0 - two_theta) - lf.powf(1.0 - two_theta)) / (two_theta - 1.0)
            };
            h += alpha * r_star.powf(theta) * integral.max(0.0);
            // Both pieces overshoot the exact exponential residency;
            // subtract the excess over exactly this rank window,
            // u ∈ [(r*/L)^θ, (r*/(F+½))^θ] — see `build_excess_table`.
            let u_lo = (r_star / lf).powf(theta);
            let u_hi = (r_star / from).powf(theta);
            let excess = alpha * r_star.powf(1.0 - theta) / theta
                * (self.excess_integral(u_lo) - self.excess_integral(u_hi));
            h -= excess.max(0.0);
        }
        h.clamp(0.0, 1.0)
    }

    /// Server-wide hit ratio `Σ_j w_j · h(w_j, b)` — the ablation's view.
    pub fn aggregate_hit_ratio(&self, site_pops: &[f64], b: usize) -> f64 {
        let scale = self.demand_scale(site_pops);
        let tau = self.characteristic_scale(b, &scale);
        site_pops
            .iter()
            .map(|&w| {
                if w <= 0.0 {
                    0.0
                } else {
                    w * self.site_hit_ratio_at(w, tau)
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LruModel;

    fn pops() -> Vec<f64> {
        let mut w: Vec<f64> = (0..12).map(|i| 0.75f64.powi(i)).collect();
        let norm: f64 = w.iter().sum();
        w.iter_mut().for_each(|x| *x /= norm);
        w
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        let m = ClosedFormLru::new(200, 1.0);
        let s = m.demand_scale(&pops());
        assert_eq!(m.site_hit_ratio(0.0, 100, &s), 0.0);
        assert_eq!(m.site_hit_ratio(0.3, 0, &s), 0.0);
        assert_eq!(m.site_hit_ratio(-1.0, 100, &s), 0.0);
        let empty = m.demand_scale(&[]);
        assert_eq!(m.site_hit_ratio(0.3, 100, &empty), 0.0);
    }

    #[test]
    fn hit_ratio_in_unit_interval_and_monotone_in_buffer() {
        let m = ClosedFormLru::new(200, 0.8);
        let s = m.demand_scale(&pops());
        let mut prev = 0.0;
        for b in [1usize, 10, 50, 200, 800, 2400, 5000] {
            let h = m.site_hit_ratio(0.2, b, &s);
            assert!((0.0..=1.0).contains(&h), "b={b}: {h}");
            assert!(h + 1e-12 >= prev, "b={b}: {h} < {prev}");
            prev = h;
        }
    }

    #[test]
    fn full_coverage_hits_everything() {
        let m = ClosedFormLru::new(100, 1.0);
        let w = pops();
        let s = m.demand_scale(&w);
        // Buffer covering every object of every site: h → 1 for all sites,
        // including unpopular ones (the water-filling pass's job).
        let total = 100 * w.len();
        for &p in &w {
            let h = m.site_hit_ratio(p, total, &s);
            assert!(h > 0.999, "p={p}: {h}");
        }
    }

    #[test]
    fn occupancies_fill_the_buffer() {
        let m = ClosedFormLru::new(500, 1.0);
        let w = pops();
        let s = m.demand_scale(&w);
        for &b in &[40usize, 400, 2000] {
            let tau = m.characteristic_scale(b, &s);
            let occ: f64 = w
                .iter()
                .map(|&p| m.occupancy(p.powf(1.0 / m.theta()) * tau))
                .sum();
            // The τ bisection conserves the budget (up to solver and
            // interpolation slack).
            assert!(
                (occ - b as f64).abs() <= 0.02 * b as f64,
                "b={b}: occupancy {occ}"
            );
            // The fully resident prefixes alone can never exceed it.
            let ranks: f64 = w.iter().map(|&p| m.characteristic_rank(p, b, &s)).sum();
            assert!(ranks <= b as f64 + 1e-6, "b={b}: ranks {ranks}");
        }
    }

    #[test]
    fn tracks_the_paper_model() {
        // The accuracy contract the differential suite also enforces:
        // within 0.15 absolute of Eq. (1)/(2) across the operating
        // envelope (the paper model itself is only ~0.07 from ground
        // truth; see ablation_model for the full comparison).
        for &(l, theta) in &[(200usize, 0.8f64), (500, 1.0), (1000, 1.2), (300, 0.6)] {
            let cf = ClosedFormLru::new(l, theta);
            let paper = LruModel::new(l, theta);
            let w = pops();
            let scale = cf.demand_scale(&w);
            let mut worst: f64 = 0.0;
            for &b in &[l / 10, l / 2, l, 2 * l, 4 * l] {
                let p_b = paper.top_b_mass(&w, b);
                let k = paper.eviction_horizon_approx(b, p_b);
                for &p in &w {
                    let exact = paper.site_hit_ratio(p, k);
                    let approx = cf.site_hit_ratio(p, b, &scale);
                    worst = worst.max((exact - approx).abs());
                }
            }
            assert!(worst < 0.15, "L={l} θ={theta}: worst |err| {worst}");
        }
    }
}

#[cfg(test)]
mod diag {
    use super::*;
    use crate::model::LruModel;

    #[test]
    #[ignore]
    fn dump_error_surface() {
        let mut w: Vec<f64> = (0..12).map(|i| 0.75f64.powi(i)).collect();
        let norm: f64 = w.iter().sum();
        w.iter_mut().for_each(|x| *x /= norm);
        for &(l, theta) in &[(200usize, 0.8f64), (500, 1.0), (1000, 1.2), (300, 0.6)] {
            let cf = ClosedFormLru::new(l, theta);
            let paper = LruModel::new(l, theta);
            let scale = cf.demand_scale(&w);
            println!("== L={l} theta={theta}");
            for &b in &[l / 10, l / 2, l, 2 * l, 4 * l] {
                let p_b = paper.top_b_mass(&w, b);
                let k = paper.eviction_horizon_approx(b, p_b);
                for (j, &p) in w.iter().enumerate() {
                    let exact = paper.site_hit_ratio(p, k);
                    let approx = cf.site_hit_ratio(p, b, &scale);
                    let r = cf.characteristic_rank(p, b, &scale);
                    if (exact - approx).abs() > 0.05 {
                        println!(
                            "  b={b:5} site{j:2} p={p:.4} r*={r:8.2} exact={exact:.4} cf={approx:.4} err={:+.4}",
                            approx - exact
                        );
                    }
                }
            }
        }
    }
}
