//! Memoised hit-ratio evaluation on a quantised `(p, K)` grid.
//!
//! The paper achieves O(1) hit-ratio queries inside the greedy loop by
//! pre-computing `h(p, K)` "under different values of p and K", with a
//! granularity of 1e-5 in `p` and 5 slots in `K`. We keep the same grid but
//! fill it lazily (the planner only ever visits a tiny corner of it) behind
//! a read-write lock so rayon workers can share one table.

use crate::model::LruModel;
use parking_lot::RwLock;
use std::collections::HashMap;

/// How the eviction horizon `K` is snapped to the grid.
#[derive(Debug, Clone, Copy)]
pub enum KQuant {
    /// Fixed-width bins of the given size — the paper's scheme ("the
    /// granularity of K was set to 5 time slots").
    Absolute(f64),
    /// Geometric bins: `K` rounds to the nearest power of `1 + step`.
    /// `h(p, K)` varies smoothly (sub-linearly) in `K`, so a 1% relative
    /// grid keeps the hit-ratio error far below the model's own ~7% while
    /// collapsing the enormous absolute range of K (10⁰..10⁷ across buffer
    /// sizes) into a few hundred cells — essential for the planner's inner
    /// loop at paper scale.
    Relative(f64),
}

/// Lazily filled lookup table over quantised `(p, K)`.
///
/// Queries round to the nearest grid point (the paper's scheme), so results
/// differ from the exact model by at most the grid-cell variation; tests
/// bound that error.
#[derive(Debug)]
pub struct HitRatioTable {
    model: LruModel,
    p_step: f64,
    k_quant: KQuant,
    cells: RwLock<HashMap<(u64, u64), f64>>,
    hits: std::sync::atomic::AtomicU64,
    fills: std::sync::atomic::AtomicU64,
}

impl HitRatioTable {
    /// The paper's granularity: p quantised to 1e-5, K to 5 request slots.
    pub const PAPER_P_STEP: f64 = 1e-5;
    pub const PAPER_K_STEP: f64 = 5.0;

    /// Build a table with the paper's granularity.
    pub fn new(model: LruModel) -> Self {
        Self::with_granularity(model, Self::PAPER_P_STEP, Self::PAPER_K_STEP)
    }

    /// Build with explicit absolute granularity.
    ///
    /// # Panics
    /// Panics unless both steps are positive and finite.
    pub fn with_granularity(model: LruModel, p_step: f64, k_step: f64) -> Self {
        assert!(k_step > 0.0 && k_step.is_finite(), "invalid k_step");
        Self::with_quantisation(model, p_step, KQuant::Absolute(k_step))
    }

    /// Build with an explicit K-quantisation mode.
    pub fn with_quantisation(model: LruModel, p_step: f64, k_quant: KQuant) -> Self {
        assert!(p_step > 0.0 && p_step.is_finite(), "invalid p_step");
        if let KQuant::Relative(s) = k_quant {
            assert!(s > 0.0 && s.is_finite(), "invalid relative k step");
        }
        Self {
            model,
            p_step,
            k_quant,
            cells: RwLock::new(HashMap::new()),
            hits: std::sync::atomic::AtomicU64::new(0),
            fills: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The planner's configuration: paper p-granularity, 1%-relative K.
    pub fn planner_default(model: LruModel) -> Self {
        Self::with_quantisation(model, Self::PAPER_P_STEP, KQuant::Relative(0.01))
    }

    /// The underlying exact model.
    pub fn model(&self) -> &LruModel {
        &self.model
    }

    fn quantise_k(&self, k: f64) -> (u64, f64) {
        match self.k_quant {
            KQuant::Absolute(step) => {
                let ki = (k / step).round() as u64;
                (ki, ki as f64 * step)
            }
            KQuant::Relative(step) => {
                if k < 1.0 {
                    // Sub-single-slot horizons all hit nothing; one cell.
                    return (0, 0.0);
                }
                let base = (1.0 + step).ln();
                let ki = (k.ln() / base).round();
                (ki as u64 + 1, (ki * base).exp())
            }
        }
    }

    /// The K-grid cell index [`Self::site_hit_ratio`] serves horizon `k`
    /// from — a stable fingerprint of the table column a query lands in.
    /// Two horizons with equal cells receive bit-identical hit ratios for
    /// every popularity `p`.
    pub fn k_cell(&self, k: f64) -> u64 {
        self.quantise_k(k.max(0.0)).0
    }

    /// Quantised, memoised `h(p, K)`.
    ///
    /// Fills are compute-once: the write lock is held across the model
    /// evaluation, so two workers racing on the same cell never both pay
    /// for it. Besides avoiding duplicated work, this makes `fills` (and
    /// the model's series-term counters underneath) a pure function of the
    /// query set — independent of thread count and scheduling — which the
    /// telemetry layer's determinism contract relies on.
    pub fn site_hit_ratio(&self, p: f64, k: f64) -> f64 {
        use std::sync::atomic::Ordering::Relaxed;
        let pi = (p.max(0.0) / self.p_step).round() as u64;
        let (ki, k_q) = self.quantise_k(k.max(0.0));
        let key = (pi, ki);
        if let Some(&h) = self.cells.read().get(&key) {
            self.hits.fetch_add(1, Relaxed);
            return h;
        }
        let mut cells = self.cells.write();
        if let Some(&h) = cells.get(&key) {
            self.hits.fetch_add(1, Relaxed);
            return h;
        }
        let p_q = pi as f64 * self.p_step;
        let h = self.model.site_hit_ratio(p_q, k_q);
        self.fills.fetch_add(1, Relaxed);
        cells.insert(key, h);
        h
    }

    /// Quantised hit ratio with the λ adjustment.
    pub fn site_hit_ratio_with_lambda(&self, p: f64, k: f64, lambda: f64) -> f64 {
        self.site_hit_ratio(p, k) * (1.0 - lambda.clamp(0.0, 1.0))
    }

    /// (cache hits, model evaluations) so far — lets benchmarks verify the
    /// O(1) claim empirically.
    pub fn stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering::Relaxed;
        (self.hits.load(Relaxed), self.fills.load(Relaxed))
    }

    /// Number of distinct grid cells materialised.
    pub fn cells_filled(&self) -> usize {
        self.cells.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> HitRatioTable {
        HitRatioTable::new(LruModel::new(200, 1.0))
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let t = table();
        let a = t.site_hit_ratio(0.0123, 512.0);
        let b = t.site_hit_ratio(0.0123, 512.0);
        assert_eq!(a, b);
        let (hits, fills) = t.stats();
        assert_eq!(fills, 1);
        assert_eq!(hits, 1);
        assert_eq!(t.cells_filled(), 1);
    }

    #[test]
    fn nearby_queries_share_a_cell() {
        let t = table();
        // Within half a p-step and half a k-step of each other.
        let a = t.site_hit_ratio(0.010_000, 500.0);
        let b = t.site_hit_ratio(0.010_004, 501.0);
        assert_eq!(a, b);
        assert_eq!(t.cells_filled(), 1);
    }

    #[test]
    fn quantisation_error_is_bounded() {
        let t = table();
        let exact = t.model().site_hit_ratio(0.01234, 503.0);
        let quantised = t.site_hit_ratio(0.01234, 503.0);
        assert!(
            (exact - quantised).abs() < 0.01,
            "quantisation error {} too large",
            (exact - quantised).abs()
        );
    }

    #[test]
    fn lambda_adjustment_matches_model() {
        let t = table();
        let h = t.site_hit_ratio(0.02, 100.0);
        assert!((t.site_hit_ratio_with_lambda(0.02, 100.0, 0.25) - 0.75 * h).abs() < 1e-12);
    }

    #[test]
    fn negative_inputs_clamped_to_zero_cell() {
        let t = table();
        assert_eq!(t.site_hit_ratio(-0.5, -3.0), 0.0);
    }

    #[test]
    fn concurrent_queries_are_consistent() {
        use std::sync::Arc;
        let t = Arc::new(table());
        let mut handles = Vec::new();
        for i in 0..4 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut out = Vec::new();
                for j in 0..50 {
                    let p = 1e-4 * ((i * 50 + j) % 20 + 1) as f64;
                    out.push((p, t.site_hit_ratio(p, 250.0)));
                }
                out
            }));
        }
        let results: Vec<Vec<(f64, f64)>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Same p must give the same h across threads.
        let mut seen: HashMap<u64, f64> = HashMap::new();
        for (p, h) in results.into_iter().flatten() {
            let key = (p / HitRatioTable::PAPER_P_STEP).round() as u64;
            if let Some(&prev) = seen.get(&key) {
                assert_eq!(prev, h);
            } else {
                seen.insert(key, h);
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_step_panics() {
        HitRatioTable::with_granularity(LruModel::new(10, 1.0), 0.0, 5.0);
    }

    #[test]
    fn relative_k_quantisation_error_is_bounded() {
        let t = HitRatioTable::planner_default(LruModel::new(500, 1.0));
        for k in [3.0, 57.0, 1234.0, 98_765.0, 5_000_000.0] {
            let exact = t.model().site_hit_ratio(0.02, k);
            let quantised = t.site_hit_ratio(0.02, k);
            assert!(
                (exact - quantised).abs() < 0.005,
                "K={k}: exact {exact} vs quantised {quantised}"
            );
        }
    }

    #[test]
    fn relative_k_collapses_nearby_horizons() {
        let t = HitRatioTable::planner_default(LruModel::new(100, 1.0));
        let a = t.site_hit_ratio(0.01, 10_000.0);
        let b = t.site_hit_ratio(0.01, 10_030.0); // within 1% of 10k
        assert_eq!(a, b);
        assert_eq!(t.cells_filled(), 1);
    }

    #[test]
    fn relative_k_tiny_horizons_share_zero_cell() {
        let t = HitRatioTable::planner_default(LruModel::new(100, 1.0));
        assert_eq!(t.site_hit_ratio(0.5, 0.2), 0.0);
        assert_eq!(t.site_hit_ratio(0.5, 0.9), 0.0);
        assert_eq!(t.cells_filled(), 1);
    }
}
