//! Monte-Carlo ground truth: run the real LRU from `cdn-cache` over a
//! synthetic stream and measure per-site hit ratios.
//!
//! Figure 6 of the paper compares the analytical model's predictions
//! against trace-driven simulation; this module is the self-contained
//! version of that comparison used by unit tests and `ablation_model`.

use cdn_cache::{Cache, LruCache, ObjectKey};
use cdn_workload::ZipfLike;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a Monte-Carlo run.
#[derive(Debug, Clone)]
pub struct McResult {
    /// Hit ratio per site (requests after warm-up only).
    pub per_site: Vec<f64>,
    /// Overall hit ratio.
    pub aggregate: f64,
    /// Requests measured (excludes warm-up).
    pub measured_requests: u64,
}

/// Simulate an LRU of `buffer_objects` unit-size slots fed by requests whose
/// site follows `site_pops` (must sum to ~1) and whose object follows
/// `zipf`. The first `warmup` of the `total` requests are not measured.
///
/// # Panics
/// Panics if `warmup >= total` or `site_pops` is empty.
pub fn monte_carlo_hit_ratio(
    site_pops: &[f64],
    zipf: &ZipfLike,
    buffer_objects: usize,
    total: u64,
    warmup: u64,
    seed: u64,
) -> McResult {
    assert!(!site_pops.is_empty(), "need at least one site");
    assert!(
        warmup < total,
        "warm-up {warmup} must be below total {total}"
    );

    // Unit-size objects: capacity in "bytes" equals the object count.
    let mut cache = LruCache::new(buffer_objects as u64);
    let mut cdf = Vec::with_capacity(site_pops.len());
    let mut acc = 0.0;
    for &p in site_pops {
        acc += p;
        cdf.push(acc);
    }
    let norm = acc;
    for c in &mut cdf {
        *c /= norm;
    }
    *cdf.last_mut().expect("non-empty") = 1.0;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = vec![0u64; site_pops.len()];
    let mut reqs = vec![0u64; site_pops.len()];

    for n in 0..total {
        let u: f64 = rng.gen();
        let site = cdf.partition_point(|&c| c < u) as u32;
        let object = (zipf.sample(&mut rng) - 1) as u32;
        let key = ObjectKey::new(site, object);
        let hit = cache.access(key, 1);
        if n >= warmup {
            reqs[site as usize] += 1;
            if hit {
                hits[site as usize] += 1;
            }
        }
    }

    let per_site: Vec<f64> = hits
        .iter()
        .zip(&reqs)
        .map(|(&h, &r)| if r == 0 { 0.0 } else { h as f64 / r as f64 })
        .collect();
    let total_hits: u64 = hits.iter().sum();
    let total_reqs: u64 = reqs.iter().sum();

    McResult {
        per_site,
        aggregate: if total_reqs == 0 {
            0.0
        } else {
            total_hits as f64 / total_reqs as f64
        },
        measured_requests: total_reqs,
    }
}

/// Convenience: the paper-model prediction for the same setup, enabling
/// side-by-side accuracy checks.
pub fn paper_model_prediction(
    site_pops: &[f64],
    model: &crate::LruModel,
    buffer_objects: usize,
) -> Vec<f64> {
    let p_b = model.top_b_mass(site_pops, buffer_objects);
    let k = model.eviction_horizon(buffer_objects, p_b);
    site_pops
        .iter()
        .map(|&p| model.site_hit_ratio(p, k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LruModel;

    #[test]
    fn aggregate_is_request_weighted_mean() {
        let zipf = ZipfLike::new(50, 1.0);
        let res = monte_carlo_hit_ratio(&[0.7, 0.3], &zipf, 20, 30_000, 5_000, 3);
        assert!(res.aggregate > 0.0 && res.aggregate < 1.0);
        assert_eq!(res.measured_requests, 25_000);
    }

    #[test]
    fn bigger_buffer_gives_higher_hit_ratio() {
        let zipf = ZipfLike::new(100, 1.0);
        let small = monte_carlo_hit_ratio(&[1.0], &zipf, 5, 50_000, 10_000, 4).aggregate;
        let large = monte_carlo_hit_ratio(&[1.0], &zipf, 50, 50_000, 10_000, 4).aggregate;
        assert!(large > small, "large {large} <= small {small}");
    }

    #[test]
    fn buffer_covering_everything_hits_after_warmup() {
        let zipf = ZipfLike::new(20, 1.0);
        let res = monte_carlo_hit_ratio(&[1.0], &zipf, 20, 50_000, 20_000, 5);
        assert!(res.aggregate > 0.99, "aggregate {}", res.aggregate);
    }

    #[test]
    fn model_prediction_close_to_monte_carlo() {
        // The paper reports < 7% error on per-request cost; on raw hit
        // ratios we allow a few points of absolute error.
        let zipf = ZipfLike::new(200, 1.0);
        let model = LruModel::from_zipf(zipf.clone());
        let pops = [0.4, 0.35, 0.25];
        let b = 60;
        let mc = monte_carlo_hit_ratio(&pops, &zipf, b, 400_000, 100_000, 6);
        let predicted = paper_model_prediction(&pops, &model, b);
        for (j, (&sim, &pred)) in mc.per_site.iter().zip(&predicted).enumerate() {
            assert!(
                (sim - pred).abs() < 0.06,
                "site {j}: sim {sim:.4} vs model {pred:.4}"
            );
        }
    }

    #[test]
    fn more_popular_site_gets_higher_hit_ratio() {
        let zipf = ZipfLike::new(100, 1.0);
        let res = monte_carlo_hit_ratio(&[0.8, 0.2], &zipf, 40, 200_000, 50_000, 7);
        assert!(res.per_site[0] > res.per_site[1]);
    }

    #[test]
    #[should_panic]
    fn warmup_exceeding_total_panics() {
        let zipf = ZipfLike::new(10, 1.0);
        monte_carlo_hit_ratio(&[1.0], &zipf, 5, 100, 100, 0);
    }
}
