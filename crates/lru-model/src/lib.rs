//! The paper's analytical LRU hit-ratio model, plus an alternative
//! (Che's approximation) and a Monte-Carlo validator.
//!
//! Section 3.2 of the paper derives, for a single CDN server:
//!
//! 1. the *eviction horizon* `K` — the expected number of request slots an
//!    object survives in an LRU buffer of `B` objects without being
//!    requested (Equation 2), from the cumulative popularity `p_B` of the
//!    `B` globally most popular cacheable objects;
//! 2. the steady-state probability that a given object is resident,
//!    `1 − (1 − p_k)^K`;
//! 3. the per-site hit ratio (Equation 1) by summing over the site's
//!    Zipf-distributed objects, and
//! 4. an adjustment `h · (1 − λ)` for uncacheable documents.
//!
//! The hybrid placement algorithm evaluates that hit ratio thousands of
//! times per iteration, so — exactly as the paper prescribes — we memoise it
//! on a quantised `(p, K)` grid ([`table::HitRatioTable`]), making each
//! evaluation O(1) after the first.
//!
//! [`che`] implements Che's approximation as an independent oracle for the
//! model-accuracy ablation, and [`validation`] measures ground truth by
//! running the real `cdn-cache` LRU over a synthetic stream.

pub mod che;
pub mod closed_form;
pub mod model;
pub mod table;
pub mod transient;
pub mod validation;

pub use che::CheModel;
pub use closed_form::{ClosedFormLru, DemandScale};
pub use model::LruModel;
pub use table::HitRatioTable;
