//! Che's approximation — an independent LRU hit-ratio oracle.
//!
//! Che, Tung & Wang (2002) approximate LRU by a *characteristic time* `t_C`:
//! an object with request rate `λ_k` is resident with probability
//! `1 − e^{−λ_k t_C}`, where `t_C` solves `Σ_k (1 − e^{−λ_k t_C}) = B`.
//! It post-dates the same era as the paper and is the standard tool today,
//! so we ship it as the alternative predictor for the model ablation
//! (`ablation_model` in `cdn-bench`).

use cdn_workload::ZipfLike;

/// Che's approximation over a population of sites sharing one internal
/// Zipf(θ, L) law — mirroring [`crate::LruModel`]'s interface.
#[derive(Debug, Clone)]
pub struct CheModel {
    zipf: ZipfLike,
}

impl CheModel {
    pub fn new(l: usize, theta: f64) -> Self {
        Self {
            zipf: ZipfLike::new(l, theta),
        }
    }

    pub fn from_zipf(zipf: ZipfLike) -> Self {
        Self { zipf }
    }

    /// Expected number of resident objects at characteristic time `t`,
    /// for the given site popularities (per-request probabilities).
    fn expected_residents(&self, site_pops: &[f64], t: f64) -> f64 {
        let mut sum = 0.0;
        for &p in site_pops {
            if p <= 0.0 {
                continue;
            }
            for &pmf in self.zipf.pmf_slice() {
                sum += 1.0 - (-p * pmf * t).exp();
            }
        }
        sum
    }

    /// Solve for the characteristic time of a buffer of `b` objects by
    /// bisection on the monotone residency count. Returns 0 for `b == 0`
    /// and `f64::INFINITY` when the buffer holds the entire population.
    pub fn characteristic_time(&self, site_pops: &[f64], b: usize) -> f64 {
        if b == 0 {
            return 0.0;
        }
        let total_objects = site_pops.iter().filter(|&&p| p > 0.0).count() * self.zipf.n();
        if b >= total_objects {
            return f64::INFINITY;
        }
        // Bracket: residents(t) is increasing in t.
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        while self.expected_residents(site_pops, hi) < b as f64 {
            hi *= 2.0;
            if hi > 1e18 {
                return f64::INFINITY;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.expected_residents(site_pops, mid) < b as f64 {
                lo = mid;
            } else {
                hi = mid;
            }
            if (hi - lo) / hi.max(1.0) < 1e-12 {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    /// Hit ratio of a site with popularity `p_site` given characteristic
    /// time `t_c`: `Σ_k pmf(k)·(1 − e^{−p·pmf(k)·t_C})`.
    pub fn site_hit_ratio(&self, p_site: f64, t_c: f64) -> f64 {
        if p_site <= 0.0 || t_c <= 0.0 {
            return 0.0;
        }
        if t_c.is_infinite() {
            return 1.0;
        }
        let mut h = 0.0;
        for &pmf in self.zipf.pmf_slice() {
            h += pmf * (1.0 - (-p_site * pmf * t_c).exp());
        }
        h.min(1.0)
    }

    /// Aggregate hit ratio over all sites: `Σ_j p_j · h_j`.
    pub fn aggregate_hit_ratio(&self, site_pops: &[f64], b: usize) -> f64 {
        let t_c = self.characteristic_time(site_pops, b);
        site_pops
            .iter()
            .map(|&p| p * self.site_hit_ratio(p, t_c))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CheModel {
        CheModel::new(100, 1.0)
    }

    #[test]
    fn zero_buffer_zero_time() {
        let m = model();
        assert_eq!(m.characteristic_time(&[0.5, 0.5], 0), 0.0);
        assert_eq!(m.site_hit_ratio(0.5, 0.0), 0.0);
    }

    #[test]
    fn full_buffer_hits_everything() {
        let m = model();
        let t = m.characteristic_time(&[1.0], 100);
        assert!(t.is_infinite());
        assert_eq!(m.site_hit_ratio(1.0, t), 1.0);
    }

    #[test]
    fn characteristic_time_solves_constraint() {
        let m = model();
        let pops = [0.6, 0.4];
        let b = 50;
        let t = m.characteristic_time(&pops, b);
        let residents = m.expected_residents(&pops, t);
        assert!(
            (residents - b as f64).abs() < 1e-6,
            "residents {residents} vs B {b}"
        );
    }

    #[test]
    fn characteristic_time_monotone_in_buffer() {
        let m = model();
        let pops = [0.5, 0.3, 0.2];
        let mut prev = 0.0;
        for b in [10, 50, 100, 200] {
            let t = m.characteristic_time(&pops, b);
            assert!(t > prev, "b={b}");
            prev = t;
        }
    }

    #[test]
    fn hit_ratio_monotone_in_popularity_and_time() {
        let m = model();
        assert!(m.site_hit_ratio(0.2, 100.0) > m.site_hit_ratio(0.1, 100.0));
        assert!(m.site_hit_ratio(0.1, 200.0) > m.site_hit_ratio(0.1, 100.0));
    }

    #[test]
    fn aggregate_hit_ratio_in_unit_interval_and_monotone() {
        let m = model();
        let pops = [0.25; 4];
        let mut prev = 0.0;
        for b in [0usize, 20, 80, 200, 400] {
            let h = m.aggregate_hit_ratio(&pops, b);
            assert!((0.0..=1.0).contains(&h));
            assert!(h >= prev - 1e-12, "b={b}");
            prev = h;
        }
        assert!((m.aggregate_hit_ratio(&pops, 400) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn che_and_paper_model_roughly_agree() {
        // Both approximate the same quantity; they should land within a few
        // points of each other in the regime the paper operates in.
        let che = CheModel::new(500, 1.0);
        let paper = crate::LruModel::new(500, 1.0);
        let pops = [0.1f64; 10];
        let b = 800;
        let t_c = che.characteristic_time(&pops, b);
        let p_b = paper.top_b_mass(&pops, b);
        let k = paper.eviction_horizon(b, p_b);
        for &p in &pops[..1] {
            let h_che = che.site_hit_ratio(p, t_c);
            let h_paper = paper.site_hit_ratio(p, k);
            assert!(
                (h_che - h_paper).abs() < 0.1,
                "che {h_che} vs paper {h_paper}"
            );
        }
    }
}
