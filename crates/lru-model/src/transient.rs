//! Transient (warm-up) analysis of the LRU cache.
//!
//! The paper measures only steady state, noting that it "allowed an
//! appropriate warm-up period" in simulation without quantifying it. This
//! module fills that gap analytically: starting from a cold cache, after
//! `T` requests an object with per-request probability `p_k` has been seen
//! with probability `1 − (1 − p_k)^T`, so the expected occupancy is
//! `N(T) = Σ_k (1 − (1 − p_k)^T)` (nothing is evicted until the buffer
//! fills). The *fill time* is the `T` at which `N(T) = B` — a principled
//! way to size simulation warm-ups, used by our harness tests.

use cdn_workload::ZipfLike;

/// Expected number of distinct objects referenced in `t` requests, for
/// sites with popularities `site_pops` sharing the object law `zipf`.
pub fn expected_distinct(site_pops: &[f64], zipf: &ZipfLike, t: f64) -> f64 {
    if t <= 0.0 {
        return 0.0;
    }
    let mut sum = 0.0;
    for &p in site_pops {
        if p <= 0.0 {
            continue;
        }
        for &pmf in zipf.pmf_slice() {
            let q = (p * pmf).clamp(0.0, 1.0);
            // 1 − (1−q)^t via ln for numerical stability at tiny q.
            sum += 1.0 - ((1.0 - q).ln() * t).exp();
        }
    }
    sum
}

/// Requests needed for a cold LRU of `b` object slots to fill, i.e. the
/// smallest `T` with `expected_distinct(T) >= b`. Returns `f64::INFINITY`
/// when the population has fewer than `b` objects (the buffer never fills).
pub fn fill_time(site_pops: &[f64], zipf: &ZipfLike, b: usize) -> f64 {
    if b == 0 {
        return 0.0;
    }
    let total_objects = site_pops.iter().filter(|&&p| p > 0.0).count() * zipf.n();
    if b > total_objects {
        return f64::INFINITY;
    }
    let target = b as f64;
    let mut lo = 0.0f64;
    let mut hi = b as f64; // need at least b requests to see b objects
    while expected_distinct(site_pops, zipf, hi) < target {
        hi *= 2.0;
        if hi > 1e18 {
            return f64::INFINITY;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if expected_distinct(site_pops, zipf, mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo) / hi.max(1.0) < 1e-9 {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// A warm-up length recommendation: `multiplier` fill times (2–3 is a
/// sensible default; the hit ratio is within noise of steady state well
/// before that for Zipf-like traffic).
pub fn recommended_warmup(site_pops: &[f64], zipf: &ZipfLike, b: usize, multiplier: f64) -> u64 {
    let t = fill_time(site_pops, zipf, b);
    if t.is_infinite() {
        // Buffer exceeds the population: warm up by one full population pass
        // scaled by the multiplier instead.
        return ((zipf.n() * site_pops.len()) as f64 * multiplier) as u64;
    }
    (t * multiplier).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validation::monte_carlo_hit_ratio;

    fn zipf() -> ZipfLike {
        ZipfLike::new(200, 1.0)
    }

    #[test]
    fn expected_distinct_boundaries() {
        let z = zipf();
        assert_eq!(expected_distinct(&[1.0], &z, 0.0), 0.0);
        // One request references exactly one object.
        assert!((expected_distinct(&[1.0], &z, 1.0) - 1.0).abs() < 1e-9);
        // Infinite horizon approaches the population size.
        let big = expected_distinct(&[1.0], &z, 1e12);
        assert!((big - 200.0).abs() < 1.0, "big {big}");
    }

    #[test]
    fn expected_distinct_monotone_and_concave() {
        let z = zipf();
        let pops = [0.6, 0.4];
        let mut prev = 0.0;
        let mut prev_gain = f64::INFINITY;
        // Equal 25-request steps: gains must shrink (diminishing novelty).
        for step in 1..=8 {
            let t = 25.0 * step as f64;
            let d = expected_distinct(&pops, &z, t);
            assert!(d > prev);
            let gain = d - prev;
            assert!(gain <= prev_gain + 1e-9, "not concave at t={t}");
            prev = d;
            prev_gain = gain;
        }
    }

    #[test]
    fn fill_time_solves_the_target() {
        let z = zipf();
        let pops = [1.0];
        let b = 80;
        let t = fill_time(&pops, &z, b);
        assert!(t.is_finite());
        let reached = expected_distinct(&pops, &z, t);
        assert!((reached - b as f64).abs() < 1e-3, "reached {reached}");
    }

    #[test]
    fn fill_time_monotone_in_buffer() {
        let z = zipf();
        let pops = [0.5, 0.5];
        let mut prev = 0.0;
        for b in [10, 40, 100, 300] {
            let t = fill_time(&pops, &z, b);
            assert!(t > prev, "b={b}");
            prev = t;
        }
    }

    #[test]
    fn oversized_buffer_never_fills() {
        let z = zipf();
        assert!(fill_time(&[1.0], &z, 201).is_infinite());
        assert_eq!(fill_time(&[1.0], &z, 0), 0.0);
    }

    #[test]
    fn recommended_warmup_reaches_near_steady_state() {
        // A Monte-Carlo run measured after the recommended warm-up should be
        // close to one measured after a much longer warm-up.
        let z = zipf();
        let pops = [1.0];
        let b = 50;
        let warmup = recommended_warmup(&pops, &z, b, 3.0);
        let total = warmup + 200_000;
        let after_recommended = monte_carlo_hit_ratio(&pops, &z, b, total, warmup, 5).aggregate;
        let after_long = monte_carlo_hit_ratio(&pops, &z, b, 600_000, 400_000, 5).aggregate;
        assert!(
            (after_recommended - after_long).abs() < 0.02,
            "recommended {after_recommended} vs long {after_long}"
        );
    }

    #[test]
    fn recommended_warmup_handles_oversized_buffer() {
        let z = zipf();
        let w = recommended_warmup(&[1.0], &z, 10_000, 2.0);
        assert_eq!(w, 400); // 200 objects × 1 site × 2.0
    }
}
