//! Equations (1) and (2) of the paper.

use cdn_telemetry as telemetry;
use cdn_workload::ZipfLike;
use std::collections::BinaryHeap;
use std::sync::{Arc, OnceLock};

/// Cached registry handles for the Eq. (1) hot loop. Handles survive
/// `telemetry::reset_metrics()` (values are zeroed in place), so caching
/// them once per process is safe and keeps the instrumented path at one
/// relaxed atomic add per evaluation.
struct SeriesCounters {
    terms: Arc<telemetry::Counter>,
    cutoffs: Arc<telemetry::Counter>,
    evals: Arc<telemetry::Counter>,
}

fn series_counters() -> &'static SeriesCounters {
    static COUNTERS: OnceLock<SeriesCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let reg = telemetry::registry();
        SeriesCounters {
            terms: reg.counter("lru_model.series_terms"),
            cutoffs: reg.counter("lru_model.tail_cutoffs"),
            evals: reg.counter("lru_model.evaluations"),
        }
    })
}

/// `1 − (1 − p)^K` for `p ∈ [0, 1]`, `K > 0`, evaluated as
/// `−expm1(K·ln_1p(−p))`: one log/exp pair instead of `powf`, and
/// better-conditioned where the Zipf tail lives (`p → 0` would round
/// inside the naive `1 − p`). The endpoints fall out exactly: `p = 0`
/// gives 0 and `p = 1` gives `−expm1(−∞) = 1`.
#[inline]
fn residency(p: f64, k: f64) -> f64 {
    -(k * (-p).ln_1p()).exp_m1()
}

/// The analytical LRU model for one population of sites that all share a
/// Zipf(θ) internal object popularity over `L` objects — the paper's setup.
///
/// ```
/// use cdn_lru_model::LruModel;
/// let model = LruModel::new(500, 1.0);
/// // A 100-object buffer whose front is filled by objects carrying 60% of
/// // the traffic survives untouched objects for K requests:
/// let k = model.eviction_horizon(100, 0.6);
/// assert!(k > 100.0);
/// // A site receiving 10% of this server's requests then hits at:
/// let h = model.site_hit_ratio(0.10, k);
/// assert!(h > 0.0 && h < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct LruModel {
    zipf: ZipfLike,
}

impl LruModel {
    /// Build the model for sites of `l` objects with Zipf exponent `theta`.
    pub fn new(l: usize, theta: f64) -> Self {
        Self {
            zipf: ZipfLike::new(l, theta),
        }
    }

    /// Build from an existing popularity law (shared with the workload).
    pub fn from_zipf(zipf: ZipfLike) -> Self {
        Self { zipf }
    }

    /// The object-popularity law the model assumes.
    pub fn zipf(&self) -> &ZipfLike {
        &self.zipf
    }

    /// Equation (2): the expected number of request slots an object that is
    /// never requested survives before eviction, for a buffer of `b`
    /// objects whose ahead-of-us occupants carry total popularity `p_b`.
    ///
    /// `K = Σ_{i=1..B} 1 / (1 − (i−1)·p_B/(B−1))`
    ///
    /// Degenerate cases: `b == 0` gives 0 (nothing fits), `b == 1` gives 1
    /// (evicted by the next distinct request).
    pub fn eviction_horizon(&self, b: usize, p_b: f64) -> f64 {
        if b == 0 {
            return 0.0;
        }
        if b == 1 {
            return 1.0;
        }
        // Clamp: p_B is a probability mass; a value of exactly 1 would make
        // the final term infinite (the buffer never drains), which the
        // bounded sum below avoids by capping each denominator.
        let p_b = p_b.clamp(0.0, 1.0);
        let q = p_b / (b as f64 - 1.0);
        let mut k = 0.0f64;
        for i in 0..b {
            let denom = (1.0 - i as f64 * q).max(1e-9);
            k += 1.0 / denom;
        }
        k
    }

    /// Closed-form approximation of [`Self::eviction_horizon`]: the sum
    /// `Σ_{i=0..B-1} 1/(1 − i·q)` is replaced by its Euler–Maclaurin
    /// expansion (integral + boundary + first derivative correction).
    /// Relative error is under 0.1% for every tested (B, p_B) with
    /// B > 4096 (smaller buffers use the exact O(B) sum, which is cheap
    /// there). The planner's inner loop needs this: the exact sum is O(B)
    /// per candidate with B in the tens of thousands.
    pub fn eviction_horizon_approx(&self, b: usize, p_b: f64) -> f64 {
        if b <= 4096 {
            return self.eviction_horizon(b, p_b);
        }
        let p_b = p_b.clamp(0.0, 1.0);
        if p_b == 0.0 {
            return b as f64;
        }
        if p_b >= 0.9999 {
            // Too close to the singularity for the smooth expansion.
            return self.eviction_horizon(b, p_b);
        }
        // Euler–Maclaurin for Σ_{i=0..N} f(i), f(x) = 1/(1 − qx), N = B−1:
        //   ∫_0^N f + (f(0) + f(N))/2 + (f'(N) − f'(0))/12
        let n = b as f64 - 1.0;
        let q = p_b / n;
        let tail = 1.0 / (1.0 - p_b);
        let integral = (1.0 / (1.0 - p_b)).ln() / q;
        let corr1 = (1.0 + tail) / 2.0;
        let corr2 = (q * tail * tail - q) / 12.0;
        integral + corr1 + corr2
    }

    /// Cumulative popularity of the `b` most popular objects across sites
    /// with the given popularities (`p_B` in the paper). Exact k-way merge
    /// of the per-site Zipf sequences, O(b log n_sites).
    ///
    /// Returns 1.0 when `b` covers every object.
    pub fn top_b_mass(&self, site_pops: &[f64], b: usize) -> f64 {
        let l = self.zipf.n();
        let total_objects = site_pops.len() * l;
        if b >= total_objects {
            return site_pops.iter().sum::<f64>().min(1.0);
        }
        if b == 0 || site_pops.is_empty() {
            return 0.0;
        }
        // Heap of (popularity, site, next-rank); pop b times.
        // f64 is not Ord, so order on a sortable u64 transmutation of the
        // (non-negative, finite) popularity.
        #[inline]
        fn ord_key(x: f64) -> u64 {
            debug_assert!(x >= 0.0 && x.is_finite());
            x.to_bits()
        }
        let mut heap: BinaryHeap<(u64, usize, usize)> = site_pops
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.0)
            .map(|(s, &p)| (ord_key(p * self.zipf.pmf(1)), s, 1))
            .collect();
        let mut mass = 0.0;
        for _ in 0..b {
            let Some((key, site, rank)) = heap.pop() else {
                break;
            };
            mass += f64::from_bits(key);
            if rank < l {
                heap.push((
                    ord_key(site_pops[site] * self.zipf.pmf(rank + 1)),
                    site,
                    rank + 1,
                ));
            }
        }
        mass.min(1.0)
    }

    /// Steady-state residency probability of a single object with request
    /// probability `p_obj`, for eviction horizon `k`: `1 − (1 − p)^K`.
    pub fn object_hit_prob(&self, p_obj: f64, k: f64) -> f64 {
        if k <= 0.0 {
            return 0.0;
        }
        residency(p_obj.clamp(0.0, 1.0), k)
    }

    /// Equation (1): the hit ratio a site with popularity `p_site` (at this
    /// server) achieves, given eviction horizon `k`:
    ///
    /// `h = Σ_{rank=1..L} [1 − (1 − p_site·α/rank^θ)^K] · α/rank^θ`
    pub fn site_hit_ratio(&self, p_site: f64, k: f64) -> f64 {
        if k <= 0.0 || p_site <= 0.0 {
            return 0.0;
        }
        let mut h = 0.0;
        let mut terms: u64 = 0;
        let mut cut = false;
        // Hot loop (memo-table fills): iterate the precomputed pmf directly,
        // with `residency` replacing the old per-entry `powf`.
        for &pmf in self.zipf.pmf_slice() {
            let p = (p_site * pmf).clamp(0.0, 1.0);
            // Tail cut-off. The pmf is non-increasing, so from here on every
            // term obeys 1 − (1−p)^K ≤ K·p/(1−p) ≤ 2·K·p (valid for any
            // K > 0 once p < ½), and the whole remaining tail sums to at
            // most Σ 2K·p_site·pmf² ≤ 2K·p_site·pmf·Σpmf ≤ 2K·p_site·pmf
            // < 1e-14 — two orders inside the 1e-12 accuracy the regression
            // test asserts against the naive sum.
            if p < 0.5 && 2.0 * k * p < 1e-14 {
                cut = true;
                break;
            }
            terms += 1;
            h += residency(p, k) * pmf;
        }
        // Work accounting: locally tallied, flushed as commutative atomic
        // adds — totals are exact for any thread schedule, and, because the
        // memo layers above are compute-once, a pure function of the run.
        if telemetry::enabled() {
            let c = series_counters();
            c.evals.inc();
            c.terms.add(terms);
            if cut {
                c.cutoffs.inc();
            }
        }
        h.min(1.0)
    }

    /// Hit ratio adjusted for a fraction `lambda` of uncacheable requests —
    /// the paper's Section 3.3 correction `h · (1 − λ)`.
    pub fn site_hit_ratio_with_lambda(&self, p_site: f64, k: f64, lambda: f64) -> f64 {
        self.site_hit_ratio(p_site, k) * (1.0 - lambda.clamp(0.0, 1.0))
    }

    /// Buffer size in objects for `cache_bytes` of space and mean request
    /// size `mean_request_bytes` — the paper's `B ≈ c / ō`.
    pub fn buffer_objects(&self, cache_bytes: u64, mean_request_bytes: f64) -> usize {
        if mean_request_bytes <= 0.0 {
            return 0;
        }
        (cache_bytes as f64 / mean_request_bytes).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LruModel {
        LruModel::new(100, 1.0)
    }

    #[test]
    fn horizon_degenerate_cases() {
        let m = model();
        assert_eq!(m.eviction_horizon(0, 0.5), 0.0);
        assert_eq!(m.eviction_horizon(1, 0.5), 1.0);
    }

    #[test]
    fn horizon_at_least_buffer_size() {
        // Each term of Eq. (2) is >= 1, so K >= B.
        let m = model();
        for b in [2usize, 10, 100, 1000] {
            for p in [0.0, 0.3, 0.9] {
                assert!(m.eviction_horizon(b, p) >= b as f64, "b={b} p={p}");
            }
        }
    }

    #[test]
    fn horizon_zero_mass_equals_buffer_size() {
        // With p_B = 0 every term is exactly 1: K = B.
        let m = model();
        assert!((m.eviction_horizon(50, 0.0) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn horizon_increases_with_popular_front() {
        let m = model();
        let k_low = m.eviction_horizon(100, 0.2);
        let k_high = m.eviction_horizon(100, 0.9);
        assert!(k_high > k_low);
    }

    #[test]
    fn horizon_monotone_in_buffer_size() {
        let m = model();
        let mut prev = 0.0;
        for b in [1usize, 2, 8, 64, 512] {
            let k = m.eviction_horizon(b, 0.7);
            assert!(k > prev);
            prev = k;
        }
    }

    #[test]
    fn horizon_survives_full_mass() {
        let m = model();
        let k = m.eviction_horizon(10, 1.0);
        assert!(k.is_finite() && k > 10.0);
    }

    #[test]
    fn horizon_approx_matches_exact() {
        let m = model();
        for b in [5_000usize, 20_000, 100_000] {
            for p in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999] {
                let exact = m.eviction_horizon(b, p);
                let approx = m.eviction_horizon_approx(b, p);
                let rel = (exact - approx).abs() / exact;
                assert!(rel < 1e-3, "b={b} p={p}: exact {exact} approx {approx}");
            }
        }
    }

    #[test]
    fn horizon_approx_small_b_is_exact() {
        let m = model();
        for b in 0..=4096 {
            assert_eq!(
                m.eviction_horizon_approx(b, 0.7),
                m.eviction_horizon(b, 0.7)
            );
        }
    }

    #[test]
    fn top_b_mass_boundaries() {
        let m = model();
        let pops = [0.5, 0.3, 0.2];
        assert_eq!(m.top_b_mass(&pops, 0), 0.0);
        assert!((m.top_b_mass(&pops, 300) - 1.0).abs() < 1e-9);
        assert!((m.top_b_mass(&pops, 10_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn top_b_mass_is_monotone_and_picks_greedily() {
        let m = model();
        let pops = [0.6, 0.4];
        let mut prev = 0.0;
        for b in 1..=200 {
            let mass = m.top_b_mass(&pops, b);
            assert!(mass >= prev - 1e-12, "b={b}");
            prev = mass;
        }
        // The single most popular object overall is rank 1 of site 0.
        let expected = 0.6 * m.zipf().pmf(1);
        assert!((m.top_b_mass(&pops, 1) - expected).abs() < 1e-12);
    }

    #[test]
    fn top_b_mass_beats_any_fixed_prefix_allocation() {
        // Greedy top-B must be >= taking B/2 from each of two equal sites.
        let m = model();
        let pops = [0.5, 0.5];
        let b = 40;
        let split = 0.5 * m.zipf().prefix_mass(20) + 0.5 * m.zipf().prefix_mass(20);
        assert!(m.top_b_mass(&pops, b) >= split - 1e-12);
    }

    #[test]
    fn top_b_mass_ignores_zero_popularity_sites() {
        let m = model();
        let with_zero = m.top_b_mass(&[0.7, 0.0, 0.3], 25);
        let without = m.top_b_mass(&[0.7, 0.3], 25);
        assert!((with_zero - without).abs() < 1e-12);
    }

    #[test]
    fn object_hit_prob_bounds() {
        let m = model();
        assert_eq!(m.object_hit_prob(0.5, 0.0), 0.0);
        assert_eq!(m.object_hit_prob(0.0, 100.0), 0.0);
        assert!((m.object_hit_prob(1.0, 5.0) - 1.0).abs() < 1e-12);
        let p = m.object_hit_prob(0.01, 50.0);
        assert!(p > 0.0 && p < 1.0);
    }

    #[test]
    fn site_hit_ratio_in_unit_interval_and_monotone_in_k() {
        let m = model();
        let mut prev = 0.0;
        for k in [1.0, 10.0, 100.0, 1000.0, 100_000.0] {
            let h = m.site_hit_ratio(0.05, k);
            assert!((0.0..=1.0).contains(&h));
            assert!(h >= prev);
            prev = h;
        }
    }

    #[test]
    fn site_hit_ratio_monotone_in_popularity() {
        let m = model();
        let mut prev = 0.0;
        for p in [0.001, 0.01, 0.05, 0.2, 1.0] {
            let h = m.site_hit_ratio(p, 500.0);
            assert!(h >= prev, "p={p}");
            prev = h;
        }
    }

    #[test]
    fn huge_horizon_approaches_one() {
        let m = model();
        let h = m.site_hit_ratio(1.0, 1e9);
        assert!(h > 0.999, "h = {h}");
    }

    #[test]
    fn lambda_adjustment_scales_linearly() {
        let m = model();
        let h = m.site_hit_ratio(0.1, 200.0);
        let adjusted = m.site_hit_ratio_with_lambda(0.1, 200.0, 0.1);
        assert!((adjusted - 0.9 * h).abs() < 1e-12);
        assert_eq!(m.site_hit_ratio_with_lambda(0.1, 200.0, 1.0), 0.0);
    }

    #[test]
    fn buffer_objects_division() {
        let m = model();
        assert_eq!(m.buffer_objects(10_000, 100.0), 100);
        assert_eq!(m.buffer_objects(10_050, 100.0), 100);
        assert_eq!(m.buffer_objects(0, 100.0), 0);
        assert_eq!(m.buffer_objects(100, 0.0), 0);
    }

    #[test]
    fn site_hit_ratio_matches_naive_powf_sum() {
        // The optimised path (expm1/ln_1p + tail cut-off) must agree with
        // the literal Equation (1) powf sum to 1e-12 across the whole
        // operating envelope: Zipf skews spanning the paper's range, site
        // popularities from negligible to total, and eviction horizons
        // from one request to effectively infinite.
        fn naive(m: &LruModel, p_site: f64, k: f64) -> f64 {
            if k <= 0.0 || p_site <= 0.0 {
                return 0.0;
            }
            let mut h = 0.0;
            for &pmf in m.zipf().pmf_slice() {
                let p = (p_site * pmf).clamp(0.0, 1.0);
                h += (1.0 - (1.0 - p).powf(k)) * pmf;
            }
            h.min(1.0)
        }
        for &theta in &[0.6, 0.8, 1.0, 1.2] {
            for &l in &[50usize, 500] {
                let m = LruModel::new(l, theta);
                for &p_site in &[1e-6, 1e-4, 0.01, 0.1, 0.5, 1.0] {
                    // 1e-12 agreement is asserted up to K = 1e4. Beyond
                    // that the *naive* sum is the inaccurate side: rounding
                    // p into `1 − p` perturbs the recovered exponent by
                    // ~K·2⁻⁵⁴, which powf amplifies past 1e-12 while the
                    // ln_1p path is unaffected — so huge horizons get a
                    // tolerance matching naive's own error bound instead.
                    for &k in &[1.0, 10.0, 1e3, 1e4] {
                        let fast = m.site_hit_ratio(p_site, k);
                        let slow = naive(&m, p_site, k);
                        assert!(
                            (fast - slow).abs() < 1e-12,
                            "theta={theta} L={l} p={p_site} k={k}: {fast} vs {slow}"
                        );
                    }
                    for &k in &[1e5, 1e7] {
                        let fast = m.site_hit_ratio(p_site, k);
                        let slow = naive(&m, p_site, k);
                        assert!(
                            (fast - slow).abs() < k * 3e-16,
                            "theta={theta} L={l} p={p_site} k={k}: {fast} vs {slow}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn higher_theta_gives_higher_hit_ratio() {
        // The paper's motivation: busy-server Zipf (high θ) caches better.
        let flat = LruModel::new(1000, 0.6);
        let skewed = LruModel::new(1000, 1.2);
        let k = 500.0;
        assert!(skewed.site_hit_ratio(0.1, k) > flat.site_hit_ratio(0.1, k));
    }
}
