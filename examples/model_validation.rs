//! Stand-alone use of the analytical LRU model (the paper's Section 3.2),
//! validated against a Monte-Carlo simulation of a real LRU cache — the
//! single-server core of the paper's Figure 6.
//!
//! ```text
//! cargo run --release --example model_validation
//! ```

use cdn_core::lru_model::validation::{monte_carlo_hit_ratio, paper_model_prediction};
use cdn_core::lru_model::{CheModel, LruModel};
use cdn_core::workload::ZipfLike;

fn main() {
    // One CDN server caching for 8 sites of 500 objects each, Zipf θ = 1.0.
    let l = 500;
    let theta = 1.0;
    let zipf = ZipfLike::new(l, theta);
    let model = LruModel::from_zipf(zipf.clone());
    let che = CheModel::from_zipf(zipf.clone());
    let site_pops = [0.30, 0.20, 0.15, 0.12, 0.10, 0.06, 0.04, 0.03];

    println!("buffer   mc_hit    paper_model (err)    che_model (err)");
    for buffer in [50usize, 100, 200, 400, 800, 1600] {
        let mc = monte_carlo_hit_ratio(&site_pops, &zipf, buffer, 600_000, 150_000, 42);
        // Aggregate the per-site predictions weighted by popularity.
        let paper: f64 = paper_model_prediction(&site_pops, &model, buffer)
            .iter()
            .zip(&site_pops)
            .map(|(h, p)| h * p)
            .sum();
        let che_h = che.aggregate_hit_ratio(&site_pops, buffer);
        println!(
            "{:>6} {:>8.4} {:>12.4} ({:>+6.3}) {:>10.4} ({:>+6.3})",
            buffer,
            mc.aggregate,
            paper,
            paper - mc.aggregate,
            che_h,
            che_h - mc.aggregate,
        );
    }

    println!(
        "\nthe paper's model tracks the simulated LRU within a few points of\n\
         hit ratio across two orders of magnitude of cache size (it reports\n\
         <7% error on per-request cost); Che's approximation is shown as an\n\
         independent cross-check."
    );
}
