//! Quickstart: generate a small CDN scenario, run the paper's three
//! content-delivery strategies, and print the comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cdn_core::{compare_strategies, Scenario, ScenarioConfig, Strategy};

fn main() {
    // A small transit-stub network with 6 CDN servers hosting 15 sites;
    // each server's storage is 15% of the total corpus.
    let config = ScenarioConfig::small();
    println!(
        "generating scenario: {} servers, {} sites, capacity {:.0}% of corpus",
        config.hosts.n_servers,
        config.workload.m_sites,
        config.capacity_fraction * 100.0
    );
    let scenario = Scenario::generate(&config);
    println!(
        "topology: {} nodes, {} edges; corpus {:.1} MB; {} requests",
        scenario.topology.graph.n_nodes(),
        scenario.topology.graph.n_edges(),
        scenario.catalog.total_bytes() as f64 / 1e6,
        scenario.problem.grand_total(),
    );

    // Plan and simulate the paper's three mechanisms.
    let comparison = compare_strategies(
        &scenario,
        &[Strategy::Replication, Strategy::Caching, Strategy::Hybrid],
    );
    println!("\n{}", comparison.summary_table());

    if let Some(gain) = comparison.improvement(Strategy::Hybrid, Strategy::Replication) {
        println!(
            "hybrid improves mean latency over pure replication by {:.1}%",
            gain * 100.0
        );
    }
    if let Some(gain) = comparison.improvement(Strategy::Hybrid, Strategy::Caching) {
        println!(
            "hybrid improves mean latency over pure caching by {:.1}%",
            gain * 100.0
        );
    }
}
