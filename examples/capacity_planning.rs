//! Capacity planning: how much storage should each CDN server buy?
//!
//! Sweeps the per-server capacity (as a fraction of the hosted corpus) and
//! reports the simulated mean latency of replication, caching and the
//! hybrid scheme at each point — the kind of provisioning curve an operator
//! would use to pick a storage budget.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use cdn_core::{Scenario, ScenarioConfig, Strategy};

fn main() {
    println!("capacity%  replication_ms  caching_ms  hybrid_ms  hybrid_replicas");
    for capacity in [0.05, 0.10, 0.15, 0.20, 0.30, 0.50] {
        let mut config = ScenarioConfig::small();
        config.capacity_fraction = capacity;
        let scenario = Scenario::generate(&config);

        let mut row = vec![format!("{:>8.0}%", capacity * 100.0)];
        let mut hybrid_replicas = 0;
        for strategy in [Strategy::Replication, Strategy::Caching, Strategy::Hybrid] {
            let plan = scenario.plan(strategy);
            if strategy == Strategy::Hybrid {
                hybrid_replicas = plan.placement.replica_count();
            }
            let report = scenario.simulate(&plan);
            row.push(format!("{:>14.2}", report.mean_latency_ms));
        }
        row.push(format!("{:>16}", hybrid_replicas));
        println!("{}", row.join(" "));
    }

    println!(
        "\nreading the curve: at small capacities caching dominates (one site\n\
         replica would eat the whole disk), at large capacities replication\n\
         catches up, and the hybrid tracks the better of the two throughout —\n\
         the operator can stop buying disk where the hybrid curve flattens."
    );
}
