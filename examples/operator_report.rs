//! Operator's view: beyond mean latency, what does each delivery strategy
//! do to *origin load*? A CDN's business case is keeping traffic off its
//! customers' primary servers; this example reports origin offload, peer
//! traffic, and the latency percentiles an SLA would quote.
//!
//! ```text
//! cargo run --release --example operator_report
//! ```

use cdn_core::{Scenario, ScenarioConfig, Strategy};

fn main() {
    let config = ScenarioConfig::small();
    let scenario = Scenario::generate(&config);
    println!(
        "CDN: {} servers / {} hosted sites / {:.0}% storage per server\n",
        config.hosts.n_servers,
        config.workload.m_sites,
        config.capacity_fraction * 100.0
    );

    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9} {:>10}",
        "strategy", "p50_ms", "p95_ms", "p99_ms", "local%", "peer%", "offload%", "offloadGB%"
    );
    for strategy in [
        Strategy::Replication,
        Strategy::Caching,
        Strategy::Hybrid,
        Strategy::Popularity,
        Strategy::GreedyLocal,
    ] {
        let plan = scenario.plan(strategy);
        let report = scenario.simulate(&plan);
        let measured = report.measured_requests as f64;
        println!(
            "{:<16} {:>8.0} {:>8.0} {:>8.0} {:>9.1} {:>9.1} {:>9.1} {:>10.1}",
            strategy.name(),
            report.histogram.percentile(0.5),
            report.histogram.percentile(0.95),
            report.histogram.percentile(0.99),
            100.0 * report.local_ratio(),
            100.0 * report.peer_fetches as f64 / measured,
            100.0 * report.origin_offload(),
            100.0 * report.origin_offload_bytes(),
        );
    }

    println!(
        "\nhow to read this: 'offload%' is the fraction of requests the CDN\n\
         kept away from the origin servers — the number a CDN sells. Note\n\
         the tension: the hybrid optimises *latency* (best p50 at equal\n\
         tail), while replica-heavy placements can post higher raw offload\n\
         by serving cold misses from peer replicas instead of the origin —\n\
         at the price of a much worse median. An operator choosing by SLA\n\
         latency picks the hybrid; one paying per origin-byte may weigh\n\
         peer%/offload% differently."
    );
}
