//! Flash crowd: what happens when one hosted site suddenly becomes an
//! order of magnitude hotter than planned?
//!
//! We plan placements against the *normal* demand, then replay a trace in
//! which site 0's request volume has exploded tenfold. Pure replication
//! cannot react (the replica set is static and site 0 may not be widely
//! replicated); the hybrid system's caches absorb the surge because LRU
//! adapts to the observed stream, not the planning-time statistics.
//!
//! ```text
//! cargo run --release --example flash_crowd
//! ```

use cdn_core::workload::{DemandMatrix, LambdaMode, TraceSpec};
use cdn_core::{Scenario, ScenarioConfig, Strategy};
use cdn_sim::simulate_system;

fn main() {
    let config = ScenarioConfig::small();
    let scenario = Scenario::generate(&config);
    let n = scenario.problem.n_servers();
    let m = scenario.problem.m_sites();

    // Plans are made against normal demand.
    let replication = scenario.plan(Strategy::Replication);
    let hybrid = scenario.plan(Strategy::Hybrid);

    // The flash crowd: site 0 becomes 10x hotter at every server.
    let hot_site = 0usize;
    let mut surged = Vec::with_capacity(n * m);
    for i in 0..n {
        for j in 0..m {
            let r = scenario.demand.requests(i, j);
            surged.push(if j == hot_site { r * 10 } else { r });
        }
    }
    let surged_demand = DemandMatrix::from_raw(n, m, surged);
    let surged_trace = TraceSpec::new(
        &surged_demand,
        scenario.catalog.object_zipf.clone(),
        config.lambda,
        LambdaMode::Uncacheable,
        config.seed ^ 0xf1a5,
    );

    println!(
        "flash crowd on site {hot_site}: {} -> {} requests",
        scenario.demand.site_total(hot_site),
        surged_demand.site_total(hot_site)
    );

    for (name, plan, cacheless) in [
        ("replication", &replication, true),
        ("hybrid", &hybrid, false),
    ] {
        let factory: &(dyn Fn(u64) -> Box<dyn cdn_core::cache::Cache> + Sync) = if cacheless {
            &|_| Box::new(cdn_core::cache::LruCache::new(0))
        } else {
            &|bytes| Box::new(cdn_core::cache::LruCache::new(bytes))
        };
        let normal = simulate_system(
            &scenario.problem,
            &plan.placement,
            &scenario.catalog,
            &scenario.trace,
            &config.sim,
            Some(factory),
        );
        let surge = simulate_system(
            &scenario.problem,
            &plan.placement,
            &scenario.catalog,
            &surged_trace,
            &config.sim,
            Some(factory),
        );
        println!(
            "{name:<12} normal: {:>7.2} ms   flash crowd: {:>7.2} ms   degradation: {:>+6.1}%",
            normal.mean_latency_ms,
            surge.mean_latency_ms,
            100.0 * (surge.mean_latency_ms - normal.mean_latency_ms) / normal.mean_latency_ms,
        );
    }

    println!(
        "\nthe hybrid system's first-hop caches soak up the repeated hot-site\n\
         requests, so its latency degrades less (or even improves) under the\n\
         surge, while static replication pays the full redirect cost for\n\
         every unplanned request."
    );
}
